package query

import (
	"errors"
	"fmt"
	"math"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/linalg"
	"sketchprivacy/internal/stats"
)

// This file holds the plan-builder form of every estimator.  Each planner
// registers the raw-counter evaluations its estimator needs on a Plan and
// returns a finisher that reduces the executed Results into the estimate.
// The arithmetic inside the finishers is the estimator logic itself — the
// XxxFrom entry points are now one plan build, one batched Execute and one
// finish — so the plan path cannot drift from a separate per-call
// implementation: there is only one implementation, and the execution
// strategy (serial per-call, one-pass table scan, one-fan-out cluster
// push-down) is the only variable.  Finishers run in the same order the
// per-call path evaluated in, so error precedence is preserved exactly.

// EstimateFinisher reduces executed plan results into a frequency
// estimate.
type EstimateFinisher func(*Results) (Estimate, error)

// NumericFinisher reduces executed plan results into a numeric estimate.
type NumericFinisher func(*Results) (NumericEstimate, error)

// runEstimate builds a one-off plan with the planner, executes it on the
// source and finishes — the shared body of the Estimate-valued XxxFrom
// entry points.
func runEstimate(src PartialSource, plan func(*Plan) (EstimateFinisher, error)) (Estimate, error) {
	p := NewPlan()
	fin, err := plan(p)
	if err != nil {
		return Estimate{}, err
	}
	res, err := src.Execute(p)
	if err != nil {
		return Estimate{}, err
	}
	return fin(res)
}

// runNumeric is runEstimate for NumericEstimate-valued estimators.
func runNumeric(src PartialSource, plan func(*Plan) (NumericFinisher, error)) (NumericEstimate, error) {
	p := NewPlan()
	fin, err := plan(p)
	if err != nil {
		return NumericEstimate{}, err
	}
	res, err := src.Execute(p)
	if err != nil {
		return NumericEstimate{}, err
	}
	return fin(res)
}

// finishFraction is Algorithm 2's reduction of raw counters into the
// debiased estimate; an empty record set reports ErrNoSketches exactly
// like the pre-plan path.
func (e *Estimator) finishFraction(part Partial, b bitvec.Subset) (Estimate, error) {
	if part.Records == 0 {
		return Estimate{}, fmt.Errorf("%w: %v", ErrNoSketches, b)
	}
	observed := float64(part.Hits) / float64(part.Records)
	return e.newEstimate(observed, int(part.Records)), nil
}

// PlanFraction registers one Algorithm 2 evaluation.
func (e *Estimator) PlanFraction(p *Plan, b bitvec.Subset, v bitvec.Vector) (EstimateFinisher, error) {
	ref, err := p.AddFraction(b, v)
	if err != nil {
		return nil, err
	}
	return func(res *Results) (Estimate, error) {
		return e.finishFraction(res.Fraction(ref), b)
	}, nil
}

// planMatchDistribution registers the Appendix F histogram and returns the
// x = V⁻¹·y solve as a finisher.
func (e *Estimator) planMatchDistribution(p *Plan, subs []SubQuery) (func(*Results) ([]float64, int, error), error) {
	ref, err := p.AddHistogram(subs)
	if err != nil {
		return nil, err
	}
	return e.matchDistributionFinisher(ref, subs), nil
}

// matchDistributionFinisher reduces one executed histogram entry into the
// Appendix F match distribution.
func (e *Estimator) matchDistributionFinisher(ref HistRef, subs []SubQuery) func(*Results) ([]float64, int, error) {
	return func(res *Results) ([]float64, int, error) {
		hp := res.Histogram(ref)
		if hp.Users == 0 {
			return nil, 0, fmt.Errorf("%w: no user sketched all %d subsets", ErrNoSketches, len(subs))
		}
		if len(hp.Hist) != len(subs)+1 {
			return nil, 0, fmt.Errorf("%w: histogram has %d bins for %d sub-queries", ErrMismatch, len(hp.Hist), len(subs))
		}
		y := make([]float64, len(hp.Hist))
		for i, c := range hp.Hist {
			y[i] = float64(c) / float64(hp.Users)
		}
		v := PerturbationMatrix(len(subs), e.p)
		x, err := linalg.Solve(v, y)
		if err != nil {
			return nil, 0, fmt.Errorf("query: perturbation matrix for k=%d, p=%v: %w", len(subs), e.p, err)
		}
		return x, int(hp.Users), nil
	}
}

// PlanUnionConjunction registers an Appendix F conjunction over the union
// of the sketched subsets; a single sub-query degrades to plain
// Algorithm 2, skipping the matrix machinery and its conditioning penalty.
func (e *Estimator) PlanUnionConjunction(p *Plan, subs []SubQuery) (EstimateFinisher, error) {
	if len(subs) == 1 {
		return e.PlanFraction(p, subs[0].Subset, subs[0].Value)
	}
	fin, err := e.planMatchDistribution(p, subs)
	if err != nil {
		return nil, err
	}
	return func(res *Results) (Estimate, error) {
		x, users, err := fin(res)
		if err != nil {
			return Estimate{}, err
		}
		return e.estimateFromRaw(x[len(subs)], users), nil
	}, nil
}

// PlanNoneOf registers the none-of-the-sub-queries estimator.
func (e *Estimator) PlanNoneOf(p *Plan, subs []SubQuery) (EstimateFinisher, error) {
	if err := validateSubQueries(subs); err != nil {
		return nil, err
	}
	fin, err := e.planMatchDistribution(p, subs)
	if err != nil {
		return nil, err
	}
	return func(res *Results) (Estimate, error) {
		x, users, err := fin(res)
		if err != nil {
			return Estimate{}, err
		}
		return e.estimateFromRaw(x[0], users), nil
	}, nil
}

// PlanExactlyOfK registers the exactly-l-of-k estimator.
func (e *Estimator) PlanExactlyOfK(p *Plan, subs []SubQuery, l int) (EstimateFinisher, error) {
	if l < 0 || l > len(subs) {
		return nil, fmt.Errorf("%w: exactly-%d-of-%d", ErrMismatch, l, len(subs))
	}
	fin, err := e.planMatchDistribution(p, subs)
	if err != nil {
		return nil, err
	}
	return func(res *Results) (Estimate, error) {
		x, users, err := fin(res)
		if err != nil {
			return Estimate{}, err
		}
		return e.estimateFromRaw(x[l], users), nil
	}, nil
}

// PlanAtLeastOfK registers the at-least-l-of-k estimator.
func (e *Estimator) PlanAtLeastOfK(p *Plan, subs []SubQuery, l int) (EstimateFinisher, error) {
	if l < 0 || l > len(subs) {
		return nil, fmt.Errorf("%w: at-least-%d-of-%d", ErrMismatch, l, len(subs))
	}
	fin, err := e.planMatchDistribution(p, subs)
	if err != nil {
		return nil, err
	}
	return func(res *Results) (Estimate, error) {
		x, users, err := fin(res)
		if err != nil {
			return Estimate{}, err
		}
		var raw float64
		for i := l; i < len(x); i++ {
			raw += x[i]
		}
		return e.estimateFromRaw(raw, users), nil
	}, nil
}

// PlanConjunctionFraction registers both halves of the conjunction
// estimator — the exact-subset Algorithm 2 evaluation and the Appendix F
// single-bit gluing fallback — in one plan.  The finisher prefers the
// exact path and falls back only on ErrNoSketches, mirroring the
// decision the per-call path made with a second round trip; with a plan
// both candidates ride the same table pass and the same fan-out.  The
// fallback histogram is *guarded* by the exact entry: an executor that
// finds records for the exact subset skips the histogram's evaluation
// entirely, so the common exactly-sketched case pays nothing for the
// speculative fallback.
func (e *Estimator) PlanConjunctionFraction(p *Plan, c bitvec.Conjunction) (EstimateFinisher, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("%w: empty conjunction", ErrMismatch)
	}
	b, v := c.Split()
	exactRef, err := p.AddFraction(b, v)
	if err != nil {
		return nil, err
	}
	subs := make([]SubQuery, c.Len())
	for i, lit := range c {
		val := bitvec.New(1)
		if lit.Value {
			val.Set(0, true)
		}
		subs[i] = SubQuery{Subset: bitvec.MustSubset(lit.Position), Value: val}
	}
	var glueFin EstimateFinisher
	if len(subs) == 1 {
		// A single literal's glue is the same (subset, value) pair as the
		// exact path; dedup collapses them and no histogram exists.
		glueFin, err = e.PlanFraction(p, subs[0].Subset, subs[0].Value)
	} else {
		var ref HistRef
		if ref, err = p.AddHistogramGuarded(subs, exactRef); err == nil {
			distFin := e.matchDistributionFinisher(ref, subs)
			glueFin = func(res *Results) (Estimate, error) {
				x, users, err := distFin(res)
				if err != nil {
					return Estimate{}, err
				}
				return e.estimateFromRaw(x[len(subs)], users), nil
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return func(res *Results) (Estimate, error) {
		est, err := e.finishFraction(res.Fraction(exactRef), b)
		if err == nil || !errors.Is(err, ErrNoSketches) {
			return est, err
		}
		return glueFin(res)
	}, nil
}

// PlanFieldMean registers the Section 4.1 decomposition
// Σᵢ 2^(k−i) · I(Aᵢ, 1): one single-bit evaluation per bit of the field.
func (e *Estimator) PlanFieldMean(p *Plan, f bitvec.IntField) (NumericFinisher, error) {
	fins := make([]EstimateFinisher, 0, f.Width)
	for i := 1; i <= f.Width; i++ {
		fin, err := e.PlanFraction(p, f.BitSubset(i), oneBit())
		if err != nil {
			return nil, fmt.Errorf("bit %d of field: %w", i, err)
		}
		fins = append(fins, fin)
	}
	return func(res *Results) (NumericEstimate, error) {
		var mean float64
		users := math.MaxInt64
		for i := 1; i <= f.Width; i++ {
			est, err := fins[i-1](res)
			if err != nil {
				return NumericEstimate{}, fmt.Errorf("bit %d of field: %w", i, err)
			}
			weight := math.Pow(2, float64(f.Width-i))
			// Use the unclamped estimate so the linear combination stays
			// unbiased; the final mean is clamped to the representable range.
			mean += weight * est.Raw
			if est.Users < users {
				users = est.Users
			}
		}
		if mean < 0 {
			mean = 0
		}
		if max := float64(f.Max()); mean > max {
			mean = max
		}
		return NumericEstimate{Value: mean, Users: users, Queries: f.Width}, nil
	}, nil
}

// PlanFieldSum registers the field-sum estimator: mean × users.
func (e *Estimator) PlanFieldSum(p *Plan, f bitvec.IntField) (NumericFinisher, error) {
	meanFin, err := e.PlanFieldMean(p, f)
	if err != nil {
		return nil, err
	}
	return func(res *Results) (NumericEstimate, error) {
		est, err := meanFin(res)
		if err != nil {
			return NumericEstimate{}, err
		}
		est.Value *= float64(est.Users)
		return est, nil
	}, nil
}

// PlanInnerProductMean registers the k² two-bit Appendix F combinations of
// the Section 4.1 inner-product decomposition.
func (e *Estimator) PlanInnerProductMean(p *Plan, a, b bitvec.IntField) (NumericFinisher, error) {
	type term struct {
		i, j int
		fin  EstimateFinisher
	}
	var terms []term
	for i := 1; i <= a.Width; i++ {
		for j := 1; j <= b.Width; j++ {
			subs := []SubQuery{
				{Subset: a.BitSubset(i), Value: oneBit()},
				{Subset: b.BitSubset(j), Value: oneBit()},
			}
			fin, err := e.PlanUnionConjunction(p, subs)
			if err != nil {
				return nil, fmt.Errorf("bits (%d,%d): %w", i, j, err)
			}
			terms = append(terms, term{i: i, j: j, fin: fin})
		}
	}
	return func(res *Results) (NumericEstimate, error) {
		var total float64
		users := math.MaxInt64
		queries := 0
		for _, t := range terms {
			est, err := t.fin(res)
			if err != nil {
				return NumericEstimate{}, fmt.Errorf("bits (%d,%d): %w", t.i, t.j, err)
			}
			weight := math.Pow(2, float64(a.Width-t.i)+float64(b.Width-t.j))
			total += weight * est.Raw
			queries++
			if est.Users < users {
				users = est.Users
			}
		}
		if total < 0 {
			total = 0
		}
		return NumericEstimate{Value: total, Users: users, Queries: queries}, nil
	}, nil
}

// PlanFieldLessThan registers the Section 4.1 interval decomposition: one
// prefix evaluation per set bit of c.  The whole decomposition lands in
// one plan, so an interval query costs one table pass locally and one
// fan-out over a cluster instead of popcount(c) of each.
func (e *Estimator) PlanFieldLessThan(p *Plan, f bitvec.IntField, c uint64) (NumericFinisher, error) {
	if c > f.Max() {
		// Every representable value is below c.
		ref := p.AddSubsetRecords(f.BitSubset(1))
		return func(res *Results) (NumericEstimate, error) {
			return NumericEstimate{Value: 1, Users: int(res.Count(ref)), Queries: 0}, nil
		}, nil
	}
	cBits := bitvec.FromUint(c, f.Width)
	type term struct {
		i   int
		fin EstimateFinisher
	}
	var terms []term
	for i := 1; i <= f.Width; i++ {
		if !cBits.Get(i - 1) {
			continue
		}
		fin, err := e.PlanFraction(p, f.PrefixSubset(i), prefixValue(c, f.Width, i))
		if err != nil {
			return nil, fmt.Errorf("prefix %d: %w", i, err)
		}
		terms = append(terms, term{i: i, fin: fin})
	}
	return func(res *Results) (NumericEstimate, error) {
		var raw float64
		users := math.MaxInt64
		queries := 0
		for _, t := range terms {
			est, err := t.fin(res)
			if err != nil {
				return NumericEstimate{}, fmt.Errorf("prefix %d: %w", t.i, err)
			}
			raw += est.Raw
			queries++
			if est.Users < users {
				users = est.Users
			}
		}
		if users == math.MaxInt64 {
			users = 0
		}
		return NumericEstimate{Value: stats.Clamp01(raw), Users: users, Queries: queries}, nil
	}, nil
}

// PlanFieldAtMost registers the ≤ c interval query: the strict prefix
// decomposition plus one equality evaluation on the full field subset.
func (e *Estimator) PlanFieldAtMost(p *Plan, f bitvec.IntField, c uint64) (NumericFinisher, error) {
	if c >= f.Max() {
		ref := p.AddSubsetRecords(f.FullSubset())
		return func(res *Results) (NumericEstimate, error) {
			return NumericEstimate{Value: 1, Users: int(res.Count(ref)), Queries: 0}, nil
		}, nil
	}
	lessFin, err := e.PlanFieldLessThan(p, f, c)
	if err != nil {
		return nil, err
	}
	eqFin, err := e.PlanFraction(p, f.FullSubset(), bitvec.FromUint(c, f.Width))
	if err != nil {
		return nil, fmt.Errorf("equality term: %w", err)
	}
	return func(res *Results) (NumericEstimate, error) {
		less, err := lessFin(res)
		if err != nil {
			return NumericEstimate{}, err
		}
		eq, err := eqFin(res)
		if err != nil {
			return NumericEstimate{}, fmt.Errorf("equality term: %w", err)
		}
		users := less.Users
		if less.Queries == 0 || eq.Users < users {
			users = eq.Users
		}
		return NumericEstimate{
			Value:   stats.Clamp01(less.Value + eq.Raw),
			Users:   users,
			Queries: less.Queries + 1,
		}, nil
	}, nil
}

// PlanEqualAndLessThan registers the combined a = c ∧ b < d query
// ("Combining queries together", Section 4.1).
func (e *Estimator) PlanEqualAndLessThan(p *Plan, a bitvec.IntField, c uint64, b bitvec.IntField, d uint64) (NumericFinisher, error) {
	if c > a.Max() {
		return nil, fmt.Errorf("%w: constant %d does not fit in field of width %d", ErrMismatch, c, a.Width)
	}
	dBits := bitvec.FromUint(d, b.Width)
	aQuery := SubQuery{Subset: a.FullSubset(), Value: bitvec.FromUint(c, a.Width)}
	type term struct {
		i   int
		fin EstimateFinisher
	}
	var terms []term
	for i := 1; i <= b.Width; i++ {
		if !dBits.Get(i - 1) {
			continue
		}
		subs := []SubQuery{aQuery, {Subset: b.PrefixSubset(i), Value: prefixValue(d, b.Width, i)}}
		fin, err := e.PlanUnionConjunction(p, subs)
		if err != nil {
			return nil, fmt.Errorf("prefix %d: %w", i, err)
		}
		terms = append(terms, term{i: i, fin: fin})
	}
	return func(res *Results) (NumericEstimate, error) {
		var raw float64
		users := math.MaxInt64
		queries := 0
		for _, t := range terms {
			est, err := t.fin(res)
			if err != nil {
				return NumericEstimate{}, fmt.Errorf("prefix %d: %w", t.i, err)
			}
			raw += est.Raw
			queries++
			if est.Users < users {
				users = est.Users
			}
		}
		if users == math.MaxInt64 {
			users = 0
		}
		return NumericEstimate{Value: stats.Clamp01(raw), Users: users, Queries: queries}, nil
	}, nil
}

// PlanConditionalSumGivenLessThan registers the Section 4.1 double sum
// Σ_{j : c_j=1} Σ_i 2^(k−i) I(A_j ∪ B_i, c₁...c_{j−1}0 1).
func (e *Estimator) PlanConditionalSumGivenLessThan(p *Plan, b bitvec.IntField, a bitvec.IntField, c uint64) (NumericFinisher, error) {
	cBits := bitvec.FromUint(c, a.Width)
	type term struct {
		j, i int
		fin  EstimateFinisher
	}
	var terms []term
	for j := 1; j <= a.Width; j++ {
		if !cBits.Get(j - 1) {
			continue
		}
		prefixQuery := SubQuery{Subset: a.PrefixSubset(j), Value: prefixValue(c, a.Width, j)}
		for i := 1; i <= b.Width; i++ {
			subs := []SubQuery{prefixQuery, {Subset: b.BitSubset(i), Value: oneBit()}}
			fin, err := e.PlanUnionConjunction(p, subs)
			if err != nil {
				return nil, fmt.Errorf("prefix %d, bit %d: %w", j, i, err)
			}
			terms = append(terms, term{j: j, i: i, fin: fin})
		}
	}
	return func(res *Results) (NumericEstimate, error) {
		var total float64
		users := math.MaxInt64
		queries := 0
		for _, t := range terms {
			est, err := t.fin(res)
			if err != nil {
				return NumericEstimate{}, fmt.Errorf("prefix %d, bit %d: %w", t.j, t.i, err)
			}
			total += math.Pow(2, float64(b.Width-t.i)) * est.Raw
			queries++
			if est.Users < users {
				users = est.Users
			}
		}
		if users == math.MaxInt64 {
			users = 0
		}
		if total < 0 {
			total = 0
		}
		return NumericEstimate{Value: total, Users: users, Queries: queries}, nil
	}, nil
}

// PlanConditionalMeanGivenLessThan registers E[b | a < c]: the conditional
// sum divided by the estimated condition frequency.
func (e *Estimator) PlanConditionalMeanGivenLessThan(p *Plan, b bitvec.IntField, a bitvec.IntField, c uint64) (NumericFinisher, error) {
	numFin, err := e.PlanConditionalSumGivenLessThan(p, b, a, c)
	if err != nil {
		return nil, err
	}
	denFin, err := e.PlanFieldLessThan(p, a, c)
	if err != nil {
		return nil, err
	}
	return func(res *Results) (NumericEstimate, error) {
		num, err := numFin(res)
		if err != nil {
			return NumericEstimate{}, err
		}
		den, err := denFin(res)
		if err != nil {
			return NumericEstimate{}, err
		}
		if den.Value <= 0 {
			return NumericEstimate{}, fmt.Errorf("query: estimated condition frequency is zero; conditional mean undefined")
		}
		val := num.Value / den.Value
		if max := float64(b.Max()); val > max {
			val = max
		}
		return NumericEstimate{Value: val, Users: num.Users, Queries: num.Queries + den.Queries}, nil
	}, nil
}

// PlanDecisionTreeFraction registers one conjunction per accepting
// root-to-leaf path; all paths share the plan's single execution.
func (e *Estimator) PlanDecisionTreeFraction(p *Plan, tree *TreeNode) (NumericFinisher, error) {
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	paths := tree.AcceptingPaths()
	for _, path := range paths {
		if path.Len() == 0 {
			// The root itself is an accepting leaf (the only way a path can
			// be empty): every user satisfies the tree.
			p.AddTotalRecords()
			return func(res *Results) (NumericEstimate, error) {
				return NumericEstimate{Value: 1, Users: int(res.Total), Queries: 0}, nil
			}, nil
		}
	}
	type term struct {
		path bitvec.Conjunction
		fin  EstimateFinisher
	}
	var terms []term
	for _, path := range paths {
		fin, err := e.PlanConjunctionFraction(p, path)
		if err != nil {
			return nil, fmt.Errorf("path %v: %w", path, err)
		}
		terms = append(terms, term{path: path, fin: fin})
	}
	return func(res *Results) (NumericEstimate, error) {
		var raw float64
		users := 0
		queries := 0
		for _, t := range terms {
			est, err := t.fin(res)
			if err != nil {
				return NumericEstimate{}, fmt.Errorf("path %v: %w", t.path, err)
			}
			raw += est.Raw
			queries++
			if users == 0 || est.Users < users {
				users = est.Users
			}
		}
		return NumericEstimate{Value: stats.Clamp01(raw), Users: users, Queries: queries}, nil
	}, nil
}
