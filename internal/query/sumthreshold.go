package query

import (
	"fmt"
	"math"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/stats"
)

// SumLessThanPow2 estimates the fraction of users whose two k-bit integer
// attributes satisfy a + b < 2^r, using only single-bit sketches of every
// bit of both fields (Appendix E).
//
// The naive expansion into plain conjunctive queries needs 2^(r+1) − 1
// queries (see NaiveSumThresholdQueries); Appendix E's trick is to
// introduce virtual bits q_i = a_i ⊕ b_i, whose public perturbed versions
// ã_i ⊕ b̃_i flip with probability 2p(1−p), and to decompose the event as
//
//	a + b < 2^r  ⇔  (all bits above position r are zero in both a and b) ∧
//	               ( ∃ low position j : q = 1 strictly above j ∧ a_j = b_j = 0
//	                 ∨ q = 1 at every low position ).
//
// Each of the r + 1 disjuncts is a conjunction over heterogeneously
// perturbed bits (p for the original bits, 2p(1−p) for the virtual ones)
// and is estimated with the product-form inverse-channel estimator; the
// disjuncts are mutually exclusive, so their estimates add.
func (e *Estimator) SumLessThanPow2(tab *sketch.Table, a, b bitvec.IntField, r int) (NumericEstimate, error) {
	if a.Width != b.Width {
		return NumericEstimate{}, fmt.Errorf("%w: fields have widths %d and %d", ErrMismatch, a.Width, b.Width)
	}
	k := a.Width
	if r < 0 {
		return NumericEstimate{}, fmt.Errorf("%w: negative threshold exponent %d", ErrMismatch, r)
	}
	if r > k {
		// a + b <= 2^(k+1) − 2 < 2^r whenever r >= k+1.
		return NumericEstimate{Value: 1, Users: 0, Queries: 0}, nil
	}

	// Every single-bit subset of both fields must have been sketched.
	subsets := append(FieldBitSubsets(a), FieldBitSubsets(b)...)
	users := tab.UsersWithAll(subsets)
	if len(users) == 0 {
		return NumericEstimate{}, fmt.Errorf("%w: need single-bit sketches of both fields", ErrNoSketches)
	}

	p := e.p
	qFlip := 2 * p * (1 - p)
	one := oneBit()

	// Observed (perturbed) bit views per user, MSB first (index 0 is the
	// highest bit, matching the paper's a_u1).
	type userBits struct {
		oa, ob, oq []bool
	}
	rows := make([]userBits, len(users))
	for ui, id := range users {
		oa := make([]bool, k)
		ob := make([]bool, k)
		oq := make([]bool, k)
		for i := 1; i <= k; i++ {
			sa, _ := tab.Get(id, a.BitSubset(i))
			sb, _ := tab.Get(id, b.BitSubset(i))
			oa[i-1] = sketch.Evaluate(e.h, id, a.BitSubset(i), one, sa)
			ob[i-1] = sketch.Evaluate(e.h, id, b.BitSubset(i), one, sb)
			oq[i-1] = oa[i-1] != ob[i-1]
		}
		rows[ui] = userBits{oa: oa, ob: ob, oq: oq}
	}

	// buildTerm assembles, for every user, the virtual-bit row of one
	// disjunct.  lowStart is the index (0-based) of the first low bit.
	lowStart := k - r
	buildTerm := func(j int, includeLowZero bool) ([][]virtualBit, []bool) {
		termRows := make([][]virtualBit, len(rows))
		var targets []bool
		appendTarget := func(t bool) { targets = append(targets, t) }

		// Describe the term's shape once via the first pass over targets.
		// High bits of a and b must be zero.
		for i := 0; i < lowStart; i++ {
			appendTarget(false) // a_i = 0
			appendTarget(false) // b_i = 0
		}
		// q must be 1 strictly above position j.
		for i := lowStart; i < j; i++ {
			appendTarget(true)
		}
		if includeLowZero {
			appendTarget(false) // a_j = 0
			appendTarget(false) // b_j = 0
		}

		for ui, ub := range rows {
			row := make([]virtualBit, 0, len(targets))
			for i := 0; i < lowStart; i++ {
				row = append(row, virtualBit{observed: ub.oa[i], flipProb: p})
				row = append(row, virtualBit{observed: ub.ob[i], flipProb: p})
			}
			for i := lowStart; i < j; i++ {
				row = append(row, virtualBit{observed: ub.oq[i], flipProb: qFlip})
			}
			if includeLowZero {
				row = append(row, virtualBit{observed: ub.oa[j], flipProb: p})
				row = append(row, virtualBit{observed: ub.ob[j], flipProb: p})
			}
			termRows[ui] = row
		}
		return termRows, targets
	}

	var raw float64
	queries := 0
	// One disjunct per low position j: q = 1 above j and a_j = b_j = 0.
	for j := lowStart; j < k; j++ {
		termRows, targets := buildTerm(j, true)
		if len(targets) == 0 {
			// r = 0 and j loop is empty; handled below.
			continue
		}
		frac, err := productFraction(termRows, targets)
		if err != nil {
			return NumericEstimate{}, err
		}
		raw += frac
		queries++
	}
	// Final disjunct: q = 1 at every low position (a + b = 2^r − 1) — only
	// meaningful when there is at least one low position; for r = 0 the
	// event is simply "all bits of a and b are zero", which is the same
	// term with no q bits.
	termRows, targets := buildTerm(k, false)
	if len(targets) > 0 {
		frac, err := productFraction(termRows, targets)
		if err != nil {
			return NumericEstimate{}, err
		}
		raw += frac
		queries++
	}

	return NumericEstimate{Value: stats.Clamp01(raw), Users: len(users), Queries: queries}, nil
}

// NaiveSumThresholdQueries returns the number of plain conjunctive queries
// the naive expansion of a + b < 2^r requires (every q_i = 1 constraint
// expands into the two exclusive assignments a_i=1,b_i=0 and a_i=0,b_i=1):
// Σ_{t=0}^{r−1} 2^t + 2^r = 2^(r+1) − 1.  Appendix E's virtual-bit
// decomposition needs only r + 1 terms; experiment E11 reports both.
func NaiveSumThresholdQueries(r int) float64 {
	if r < 0 {
		return 0
	}
	return math.Pow(2, float64(r+1)) - 1
}
