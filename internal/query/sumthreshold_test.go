package query

import (
	"errors"
	"math"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/dataset"
	"sketchprivacy/internal/stats"
)

// twoFieldPopulation builds m users with two width-k integer attributes
// drawn uniformly at random.
func twoFieldPopulation(seed uint64, m, k int) (*dataset.Population, bitvec.IntField, bitvec.IntField) {
	a := bitvec.MustIntField(0, k)
	b := bitvec.MustIntField(k, k)
	rng := stats.NewRNG(seed)
	pop := &dataset.Population{Width: 2 * k, Profiles: make([]bitvec.Profile, m)}
	for u := 0; u < m; u++ {
		d := bitvec.New(2 * k)
		a.Encode(d, uint64(rng.Intn(1<<uint(k))))
		b.Encode(d, uint64(rng.Intn(1<<uint(k))))
		pop.Profiles[u] = bitvec.Profile{ID: bitvec.UserID(u + 1), Data: d}
	}
	return pop, a, b
}

func sumTruth(pop *dataset.Population, a, b bitvec.IntField, r int) float64 {
	count := 0.0
	for _, pr := range pop.Profiles {
		if a.Decode(pr.Data)+b.Decode(pr.Data) < 1<<uint(r) {
			count++
		}
	}
	return count / float64(pop.Size())
}

func TestSumLessThanPow2RecoversTruth(t *testing.T) {
	skipIfShort(t)
	const m = 40000
	const k = 4
	p := 0.25
	pop, a, b := twoFieldPopulation(101, m, k)
	subsets := append(FieldBitSubsets(a), FieldBitSubsets(b)...)
	tab, e := buildTable(t, pop, subsets, p, 10, 102)

	for _, r := range []int{2, 3, 4} {
		truth := sumTruth(pop, a, b, r)
		est, err := e.SumLessThanPow2(tab, a, b, r)
		if err != nil {
			t.Fatal(err)
		}
		if est.Queries != r+1 {
			t.Errorf("r=%d: used %d terms, want r+1=%d", r, est.Queries, r+1)
		}
		// The product estimator's variance grows with the number of bits in
		// each term, so the tolerance is loose but still far tighter than
		// the truth spread across r values (which ranges from ~0.03 to ~0.5).
		if math.Abs(est.Value-truth) > 0.1 {
			t.Errorf("r=%d: estimate %v vs truth %v", r, est.Value, truth)
		}
	}
}

func TestSumLessThanPow2EdgeCases(t *testing.T) {
	skipIfShort(t)
	const m = 20000
	const k = 3
	p := 0.25
	pop, a, b := twoFieldPopulation(111, m, k)
	subsets := append(FieldBitSubsets(a), FieldBitSubsets(b)...)
	tab, e := buildTable(t, pop, subsets, p, 10, 112)

	// r above the width: always true.
	est, err := e.SumLessThanPow2(tab, a, b, k+1)
	if err != nil || est.Value != 1 {
		t.Errorf("r=k+1: %v, %v", est.Value, err)
	}
	// r = 0: a = b = 0, a rare event; the estimate should be near the tiny
	// truth (1/64 for uniform 3-bit fields).
	truth := sumTruth(pop, a, b, 0)
	est, err = e.SumLessThanPow2(tab, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth) > 0.08 {
		t.Errorf("r=0: estimate %v vs truth %v", est.Value, truth)
	}
	// Validation failures.
	if _, err := e.SumLessThanPow2(tab, a, bitvec.MustIntField(0, 5), 2); !errors.Is(err, ErrMismatch) {
		t.Error("width mismatch accepted")
	}
	if _, err := e.SumLessThanPow2(tab, a, b, -1); !errors.Is(err, ErrMismatch) {
		t.Error("negative r accepted")
	}
	empty, e2 := buildTable(t, dataset.UniformBinary(1, 10, 2*k, 0.5), []bitvec.Subset{bitvec.MustSubset(0)}, p, 8, 7)
	if _, err := e2.SumLessThanPow2(empty, a, b, 2); !errors.Is(err, ErrNoSketches) {
		t.Error("missing sketches accepted")
	}
}

func TestNaiveSumThresholdQueries(t *testing.T) {
	cases := map[int]float64{0: 1, 1: 3, 3: 15, 8: 511}
	for r, want := range cases {
		if got := NaiveSumThresholdQueries(r); got != want {
			t.Errorf("NaiveSumThresholdQueries(%d) = %v, want %v", r, got, want)
		}
	}
	if NaiveSumThresholdQueries(-1) != 0 {
		t.Error("negative r should give 0")
	}
	// The Appendix E decomposition uses r+1 terms — exponentially fewer.
	for _, r := range []int{4, 8, 12} {
		if float64(r+1) >= NaiveSumThresholdQueries(r) {
			t.Errorf("r=%d: virtual-bit decomposition is not cheaper", r)
		}
	}
}
