package query

import (
	"fmt"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

// TreeNode is a node of a binary decision tree over profile attributes.
// Internal nodes test one attribute and branch on its value; leaves either
// accept or reject.  Section 4.1 observes that the fraction of users
// satisfying a decision tree is the sum, over accepting root-to-leaf paths,
// of the conjunctive query defined by that path (every user satisfies at
// most one path).
type TreeNode struct {
	// Leaf marks terminal nodes; Accept is meaningful only for leaves.
	Leaf   bool
	Accept bool
	// Attr is the attribute tested at an internal node.
	Attr int
	// Zero and One are the subtrees followed when the attribute is 0 or 1.
	Zero, One *TreeNode
}

// Leaf returns an accepting or rejecting leaf.
func Leaf(accept bool) *TreeNode { return &TreeNode{Leaf: true, Accept: accept} }

// Node returns an internal node testing attr.
func Node(attr int, zero, one *TreeNode) *TreeNode {
	return &TreeNode{Attr: attr, Zero: zero, One: one}
}

// Validate checks that the tree is well formed: internal nodes have both
// children, attributes are non-negative and no attribute repeats along a
// root-to-leaf path (a repeat would make the path conjunction degenerate).
func (n *TreeNode) Validate() error {
	return n.validate(map[int]bool{})
}

func (n *TreeNode) validate(onPath map[int]bool) error {
	if n == nil {
		return fmt.Errorf("query: nil tree node")
	}
	if n.Leaf {
		return nil
	}
	if n.Attr < 0 {
		return fmt.Errorf("query: negative attribute %d in decision tree", n.Attr)
	}
	if onPath[n.Attr] {
		return fmt.Errorf("query: attribute %d tested twice on one path", n.Attr)
	}
	if n.Zero == nil || n.One == nil {
		return fmt.Errorf("query: internal node for attribute %d is missing a child", n.Attr)
	}
	onPath[n.Attr] = true
	defer delete(onPath, n.Attr)
	if err := n.Zero.validate(onPath); err != nil {
		return err
	}
	return n.One.validate(onPath)
}

// Evaluate reports whether a profile reaches an accepting leaf — the ground
// truth the estimator is compared against in tests.
func (n *TreeNode) Evaluate(d bitvec.Vector) bool {
	cur := n
	for !cur.Leaf {
		if d.Get(cur.Attr) {
			cur = cur.One
		} else {
			cur = cur.Zero
		}
	}
	return cur.Accept
}

// AcceptingPaths returns the conjunction for every accepting root-to-leaf
// path.
func (n *TreeNode) AcceptingPaths() []bitvec.Conjunction {
	var out []bitvec.Conjunction
	var walk func(node *TreeNode, path []bitvec.Literal)
	walk = func(node *TreeNode, path []bitvec.Literal) {
		if node.Leaf {
			if node.Accept {
				out = append(out, bitvec.MustConjunction(path...))
			}
			return
		}
		walk(node.Zero, append(append([]bitvec.Literal(nil), path...), bitvec.Literal{Position: node.Attr, Value: false}))
		walk(node.One, append(append([]bitvec.Literal(nil), path...), bitvec.Literal{Position: node.Attr, Value: true}))
	}
	walk(n, nil)
	return out
}

// DecisionTreeFraction estimates the fraction of users accepted by the
// tree: the sum over accepting paths of each path's conjunctive-query
// estimate.  Paths with an exactly-sketched subset use Algorithm 2
// directly; otherwise single-bit sketches are glued via Appendix F (see
// ConjunctionFraction).
//
// A tree whose every leaf accepts has fraction exactly 1 and consumes no
// queries.
func (e *Estimator) DecisionTreeFraction(tab *sketch.Table, tree *TreeNode) (NumericEstimate, error) {
	return e.DecisionTreeFractionFrom(e.TableSource(tab), tree)
}

// DecisionTreeFractionFrom is DecisionTreeFraction over any partial
// source: every accepting path's conjunction (exact subset and Appendix F
// fallback alike) rides one plan execution — one table pass locally, one
// fan-out over a cluster, however many paths the tree has.
func (e *Estimator) DecisionTreeFractionFrom(src PartialSource, tree *TreeNode) (NumericEstimate, error) {
	return runNumeric(src, func(p *Plan) (NumericFinisher, error) {
		return e.PlanDecisionTreeFraction(p, tree)
	})
}
