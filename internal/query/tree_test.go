package query

import (
	"math"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/dataset"
)

// riskTree is a small decision tree over the epidemiology attributes:
// smokers are accepted if diabetic or hypertensive; non-smokers only if
// diabetic and obese.
func riskTree() *TreeNode {
	return Node(dataset.EpiSmoker,
		/* non-smoker */ Node(dataset.EpiDiabetic,
			Leaf(false),
			Node(dataset.EpiObese, Leaf(false), Leaf(true)),
		),
		/* smoker */ Node(dataset.EpiDiabetic,
			Node(dataset.EpiHypertension, Leaf(false), Leaf(true)),
			Leaf(true),
		),
	)
}

func TestTreeValidate(t *testing.T) {
	if err := riskTree().Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if err := (Node(1, Leaf(true), nil)).Validate(); err == nil {
		t.Error("missing child accepted")
	}
	if err := (Node(-1, Leaf(true), Leaf(false))).Validate(); err == nil {
		t.Error("negative attribute accepted")
	}
	repeat := Node(2, Leaf(false), Node(2, Leaf(false), Leaf(true)))
	if err := repeat.Validate(); err == nil {
		t.Error("repeated attribute on a path accepted")
	}
	// A repeated attribute on *different* paths is fine.
	siblings := Node(0,
		Node(1, Leaf(false), Leaf(true)),
		Node(1, Leaf(true), Leaf(false)),
	)
	if err := siblings.Validate(); err != nil {
		t.Errorf("attribute reuse across sibling paths rejected: %v", err)
	}
}

func TestTreeEvaluateAndPathsAgree(t *testing.T) {
	tree := riskTree()
	paths := tree.AcceptingPaths()
	if len(paths) == 0 {
		t.Fatal("no accepting paths found")
	}
	// Every profile is accepted by the tree iff it satisfies exactly one
	// accepting path.
	for x := 0; x < 1<<uint(dataset.EpiWidth); x++ {
		d := bitvec.FromUint(uint64(x), dataset.EpiWidth)
		matches := 0
		for _, path := range paths {
			if path.Evaluate(d) {
				matches++
			}
		}
		want := 0
		if tree.Evaluate(d) {
			want = 1
		}
		if matches != want {
			t.Fatalf("profile %v: %d accepting paths matched, tree says %v", d, matches, tree.Evaluate(d))
		}
	}
}

func TestDecisionTreeFractionExactSubsets(t *testing.T) {
	const m = 25000
	p := 0.25
	pop := dataset.Epidemiology(91, m, dataset.DefaultEpidemiologyRates())
	tree := riskTree()

	// Sketch the exact subset of every accepting path.
	var subsets []bitvec.Subset
	for _, path := range tree.AcceptingPaths() {
		b, _ := path.Split()
		subsets = append(subsets, b)
	}
	tab, e := buildTable(t, pop, subsets, p, 10, 92)

	truth := 0.0
	for _, pr := range pop.Profiles {
		if tree.Evaluate(pr.Data) {
			truth++
		}
	}
	truth /= float64(m)

	est, err := e.DecisionTreeFraction(tab, tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth) > 0.06 {
		t.Errorf("decision tree fraction %v vs truth %v", est.Value, truth)
	}
	if est.Queries != len(tree.AcceptingPaths()) {
		t.Errorf("queries = %d, want one per accepting path (%d)", est.Queries, len(tree.AcceptingPaths()))
	}
}

func TestDecisionTreeFractionGluedFromSingleBits(t *testing.T) {
	skipIfShort(t)
	const m = 25000
	p := 0.25
	pop := dataset.Epidemiology(93, m, dataset.DefaultEpidemiologyRates())
	tree := riskTree()

	// Only single-bit sketches are available; paths must be glued.
	var subsets []bitvec.Subset
	for i := 0; i < dataset.EpiWidth; i++ {
		subsets = append(subsets, bitvec.MustSubset(i))
	}
	tab, e := buildTable(t, pop, subsets, p, 10, 94)

	truth := 0.0
	for _, pr := range pop.Profiles {
		if tree.Evaluate(pr.Data) {
			truth++
		}
	}
	truth /= float64(m)

	est, err := e.DecisionTreeFraction(tab, tree)
	if err != nil {
		t.Fatal(err)
	}
	// The glued path pays the Appendix F conditioning penalty, so the
	// tolerance is looser than the exact-subset variant.
	if math.Abs(est.Value-truth) > 0.12 {
		t.Errorf("glued decision tree fraction %v vs truth %v", est.Value, truth)
	}
}

func TestDecisionTreeDegenerateCases(t *testing.T) {
	pop := dataset.UniformBinary(95, 500, 4, 0.5)
	tab, e := buildTable(t, pop, []bitvec.Subset{bitvec.MustSubset(0)}, 0.3, 8, 96)

	// All-accepting tree: fraction 1 and no queries.
	est, err := e.DecisionTreeFraction(tab, Leaf(true))
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 1 || est.Queries != 0 {
		t.Errorf("all-accept tree: %+v", est)
	}
	// All-rejecting tree: fraction 0.
	est, err = e.DecisionTreeFraction(tab, Leaf(false))
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 || est.Queries != 0 {
		t.Errorf("all-reject tree: %+v", est)
	}
	// Invalid tree surfaces its validation error.
	if _, err := e.DecisionTreeFraction(tab, Node(0, nil, Leaf(true))); err == nil {
		t.Error("invalid tree accepted")
	}
}
