package server

import (
	"fmt"
	"net"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// Client is a connection to a collection server.  It is not safe for
// concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
}

// Dial connects to a collection server (or a sketchrouter — both speak the
// same protocol) and performs the version handshake: the hello carries
// this binary's protocol version, and a peer speaking a different version
// — or one too old to know the hello opcode — refuses the connection with
// a clear error instead of failing later with a decode error or a garbage
// estimate.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	if err := wire.ClientHandshake(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrRemote, err)
	}
	return c, nil
}

// Ping requests the peer's liveness text: a node reports its version and
// sketch count, a router reports ring membership, per-node liveness and
// ownership spans.
func (c *Client) Ping() (string, error) {
	if err := wire.WriteFrame(c.conn, wire.TypePing, nil); err != nil {
		return "", err
	}
	msgType, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return "", err
	}
	switch msgType {
	case wire.TypePong:
		return string(payload), nil
	case wire.TypeError:
		return "", fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return "", fmt.Errorf("%w: unexpected reply type %d", ErrRemote, msgType)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Join asks a sketchrouter to add node to the live cluster.  The call is
// synchronous: it returns after the router has streamed the moved
// ownership onto the node and cut the ring over (watch RebalanceStatus
// from another connection for progress).
func (c *Client) Join(node string) error {
	return c.admin(wire.TypeJoin, node)
}

// Drain asks a sketchrouter to move node's ownership away and retire it
// from the ring.  Synchronous, like Join.
func (c *Client) Drain(node string) error {
	return c.admin(wire.TypeDrain, node)
}

// admin runs one address-carrying admin exchange.
func (c *Client) admin(msgType byte, node string) error {
	if err := wire.WriteFrame(c.conn, msgType, []byte(node)); err != nil {
		return err
	}
	replyType, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return err
	}
	switch replyType {
	case wire.TypeAck:
		return nil
	case wire.TypeError:
		return fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return fmt.Errorf("%w: unexpected reply type %d", ErrRemote, replyType)
	}
}

// RebalanceStatus asks a sketchrouter for its membership-change state.
func (c *Client) RebalanceStatus() (string, error) {
	if err := wire.WriteFrame(c.conn, wire.TypeRebalanceStatus, nil); err != nil {
		return "", err
	}
	replyType, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return "", err
	}
	switch replyType {
	case wire.TypePong:
		return string(payload), nil
	case wire.TypeError:
		return "", fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return "", fmt.Errorf("%w: unexpected reply type %d", ErrRemote, replyType)
	}
}

// Publish sends one published sketch and waits for the acknowledgement.
func (c *Client) Publish(p sketch.Published) error {
	if err := wire.WriteFrame(c.conn, wire.TypePublish, wire.EncodePublished(p)); err != nil {
		return err
	}
	msgType, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return err
	}
	switch msgType {
	case wire.TypeAck:
		return nil
	case wire.TypeError:
		return fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return fmt.Errorf("%w: unexpected reply type %d", ErrRemote, msgType)
	}
}

// PublishAll publishes a batch in chunked TypePublishBatch frames (at
// most MaxTransferBatch records each), stopping at the first error.
// Each frame lands through the server's batched ingest — roughly one
// fsync'd commit window per touched store shard — and its single ack
// means every record in the chunk is durable.  On error the caller
// cannot assume which records of the failed chunk landed; re-publishing
// the whole batch is safe because ingestion is idempotent.
func (c *Client) PublishAll(ps []sketch.Published) error {
	for len(ps) > 0 {
		n := min(len(ps), wire.MaxTransferBatch)
		chunk := ps[:n]
		ps = ps[n:]
		if err := wire.WriteFrame(c.conn, wire.TypePublishBatch, wire.EncodePublishBatch(chunk)); err != nil {
			return err
		}
		msgType, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			return err
		}
		switch msgType {
		case wire.TypeAck:
		case wire.TypeError:
			return fmt.Errorf("%w: %s", ErrRemote, payload)
		default:
			return fmt.Errorf("%w: unexpected reply type %d", ErrRemote, msgType)
		}
	}
	return nil
}

// Stats requests the server's stats report: mechanism parameters,
// per-subset record counts and durable-store sizes.
func (c *Client) Stats() (wire.Stats, error) {
	if err := wire.WriteFrame(c.conn, wire.TypeStats, nil); err != nil {
		return wire.Stats{}, err
	}
	msgType, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return wire.Stats{}, err
	}
	switch msgType {
	case wire.TypeStatsReply:
		return wire.DecodeStats(payload)
	case wire.TypeError:
		return wire.Stats{}, fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return wire.Stats{}, fmt.Errorf("%w: unexpected reply type %d", ErrRemote, msgType)
	}
}

// QueryConjunction runs a conjunctive query remotely and returns the
// estimated fraction, the unclamped raw estimate and the number of users
// it was computed over.
func (c *Client) QueryConjunction(b bitvec.Subset, v bitvec.Vector) (wire.Result, error) {
	if err := wire.WriteFrame(c.conn, wire.TypeQuery, wire.EncodeQuery(wire.Query{Subset: b, Value: v})); err != nil {
		return wire.Result{}, err
	}
	msgType, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return wire.Result{}, err
	}
	switch msgType {
	case wire.TypeResult:
		return wire.DecodeResult(payload)
	case wire.TypeError:
		return wire.Result{}, fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return wire.Result{}, fmt.Errorf("%w: unexpected reply type %d", ErrRemote, msgType)
	}
}
