package server

import (
	"testing"
	"time"
)

// TestCloseWithIdleConnection: Close must not wait for idle clients to
// hang up — a daemon with a connected but silent sketchctl still has to
// reach its final store flush on shutdown.
func TestCloseWithIdleConnection(t *testing.T) {
	srv, addr, _, _ := startTestServer(t, 0.3, 10)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Prove the connection is live before the shutdown.
	if _, err := cli.Stats(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on an idle client connection")
	}
	// The client sees its connection die rather than hanging forever.
	if _, err := cli.Stats(); err == nil {
		t.Fatal("request on a closed server's connection succeeded")
	}
}
