package server

import (
	"bytes"
	"strings"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/obs"
	"sketchprivacy/internal/prf"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/stats"
	"sketchprivacy/internal/store"
)

// lintFamilies renders reg, holds the text to the exposition lint, and
// returns the parsed families keyed by name.
func lintFamilies(t *testing.T, reg *obs.Registry) map[string]*obs.Family {
	t.Helper()
	var sb strings.Builder
	if err := reg.RenderText(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	if errs := obs.Lint(sb.String()); len(errs) > 0 {
		t.Fatalf("exposition lint: %v\n%s", errs, sb.String())
	}
	families, err := obs.ParseText(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*obs.Family, len(families))
	for _, f := range families {
		byName[f.Name] = f
	}
	return byName
}

// histNonZero asserts the named histogram family rendered with a
// non-zero _count.
func histNonZero(t *testing.T, fams map[string]*obs.Family, name string) {
	t.Helper()
	f := fams[name]
	if f == nil {
		t.Fatalf("histogram %s missing", name)
	}
	for _, s := range f.Samples {
		if s.Name == name+"_count" {
			if s.Value == 0 {
				t.Fatalf("%s_count = 0, want non-zero", name)
			}
			return
		}
	}
	t.Fatalf("%s rendered without _count", name)
}

// TestNodeMetricsExpositionLintClean wires engine, durable store and
// server onto one registry exactly as sketchd -metrics-addr does, drives
// a fsynced publish and a plan query through the TCP path, and asserts
// the headline hot-path histograms are non-zero and the whole exposition
// passes the format lint.
func TestNodeMetricsExpositionLintClean(t *testing.T) {
	h := prf.NewBiased(bytes.Repeat([]byte{0x11}, prf.MinKeyBytes), prf.MustProb(0.3))
	params := sketch.MustParams(0.3, 10)
	eng, err := engine.New(h, params)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	st, err := store.Open(store.Options{Dir: t.TempDir(), Shards: 2, Fsync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := eng.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	srv.RegisterMetrics(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sk, err := sketch.NewSketcher(h, params)
	if err != nil {
		t.Fatal(err)
	}
	subset := bitvec.MustSubset(0, 1)
	rng := stats.NewRNG(7)
	const published = 32
	for i := 1; i <= published; i++ {
		s, err := sk.Sketch(rng, bitvec.Profile{ID: bitvec.UserID(i), Data: bitvec.MustFromString("1010")}, subset)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Publish(sketch.Published{ID: bitvec.UserID(i), Subset: subset, S: s}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.QueryConjunction(subset, bitvec.MustFromString("10")); err != nil {
		t.Fatal(err)
	}

	fams := lintFamilies(t, reg)
	histNonZero(t, fams, "store_wal_append_seconds")
	histNonZero(t, fams, "store_wal_fsync_seconds")
	histNonZero(t, fams, "engine_plan_exec_seconds")
	for name, want := range map[string]float64{
		"engine_ingest_total": published,
		"server_frames_total": published + 1, // publishes plus the query
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("series %s missing", name)
		}
		if len(f.Samples) != 1 || f.Samples[0].Value < want {
			t.Fatalf("%s = %+v, want >= %v", name, f.Samples, want)
		}
	}
	// The per-shard store gauges carry a shard label per configured shard.
	f := fams["store_wal_records"]
	if f == nil {
		t.Fatal("series store_wal_records missing")
	}
	total := 0.0
	for _, s := range f.Samples {
		if s.Label("shard") == "" {
			t.Fatalf("store_wal_records sample without shard label: %+v", s)
		}
		total += s.Value
	}
	if len(f.Samples) != 2 || total != published {
		t.Fatalf("store_wal_records = %+v (total %v), want %d across 2 shards", f.Samples, total, published)
	}
}
