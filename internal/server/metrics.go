package server

import (
	"sketchprivacy/internal/obs"
)

// RegisterMetrics registers the server's instrument families on reg.
// Everything here reads counters the server already keeps (the robustness
// counters reported in wire stats, the in-flight semaphore, the observed
// ring epoch) at render time, so serving pays nothing beyond the existing
// atomics.  Call once, before the server starts listening.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("server_inflight", "Frames currently executing under the in-flight guard.",
		func() float64 { return float64(len(s.inflight)) })
	reg.GaugeFunc("server_inflight_limit", "Configured MaxInFlight frame-execution limit.",
		func() float64 { return float64(cap(s.inflight)) })
	reg.CounterFunc("server_frames_total", "Frames served (all message types, including refused ones).",
		func() uint64 { return s.frames.Load() })
	reg.CounterFunc("server_overloads_total", "Frames shed by the in-flight guard.",
		func() uint64 { return s.overloads.Load() })
	reg.CounterFunc("server_idle_closes_total", "Connections closed by the read-idle timeout.",
		func() uint64 { return s.idleCloses.Load() })
	reg.CounterFunc("server_checksum_errors_total", "Frames refused with a CRC mismatch.",
		func() uint64 { return s.checksumErrors.Load() })
	reg.CounterFunc("server_deadline_abandons_total", "Plan executions abandoned mid-run on budget expiry.",
		func() uint64 { return s.deadlineAbandons.Load() })
	reg.GaugeFunc("server_ring_epoch", "Highest ring epoch this node has observed.",
		func() float64 { return float64(s.epoch.Load()) })
}
