package server

import (
	"errors"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/dataset"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/stats"
)

// TestPublishBatchOverTCP drives the batched publish path end to end: one
// PublishAll call must reach the server as ONE TypePublishBatch frame (the
// whole point of the opcode — the records share commit windows instead of
// paying a round-trip and an fsync each), land every record, stay
// idempotent under re-publish, and reject a conflicting sketch with the
// engine's budget error.
func TestPublishBatchOverTCP(t *testing.T) {
	const m = 300
	srv, addr, h, params := startTestServer(t, 0.25, 10)
	eng := srv.eng

	pop := dataset.UniformBinary(5, m, 4, 0.5)
	subset := bitvec.MustSubset(0, 1)
	sk, err := sketch.NewSketcher(h, params)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(77)
	batch := make([]sketch.Published, 0, m)
	for _, profile := range pop.Profiles {
		pubs, err := sk.SketchAll(rng, profile, []bitvec.Subset{subset})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, pubs...)
	}

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	before := srv.frames.Load()
	if err := cli.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	if got := srv.frames.Load() - before; got != 1 {
		t.Fatalf("batch of %d records cost %d frames, want 1", m, got)
	}
	if got := eng.Sketches(); got != m {
		t.Fatalf("engine holds %d sketches after batch publish, want %d", got, m)
	}

	// Re-publishing the identical batch is an idempotent no-op: one ack,
	// nothing new stored.
	if err := cli.PublishAll(batch); err != nil {
		t.Fatalf("identical batch re-publish refused: %v", err)
	}
	if got := eng.Sketches(); got != m {
		t.Fatalf("engine holds %d sketches after re-publish, want %d", got, m)
	}

	// A conflicting sketch for an already-published (user, subset) pair is
	// rejected — each extra sketch would spend more privacy budget — and
	// the error surfaces through the batch ack as a remote error.
	conflict := batch[0]
	conflict.S.Key++
	if err := cli.PublishAll([]sketch.Published{conflict}); !errors.Is(err, ErrRemote) {
		t.Fatalf("conflicting batch publish returned %v, want ErrRemote", err)
	}
	if got := eng.Sketches(); got != m {
		t.Fatalf("engine holds %d sketches after rejected conflict, want %d", got, m)
	}
}
