package server

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/faultnet"
	"sketchprivacy/internal/prf"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// startCfgServer is startTestServer with a caller-chosen Config.
func startCfgServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	h := prf.NewBiased(bytes.Repeat([]byte{0x11}, prf.MinKeyBytes), prf.MustProb(0.25))
	eng, err := engine.New(h, sketch.MustParams(0.25, 10))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(eng, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleConnectionsReaped checks the per-connection read deadline: a
// silent connection is closed after ReadIdleTimeout and counted, while a
// connection that keeps sending frames stays up indefinitely.
func TestIdleConnectionsReaped(t *testing.T) {
	srv, addr := startCfgServer(t, Config{ReadIdleTimeout: 150 * time.Millisecond})

	idle, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	active, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()

	// The active connection pings every ~50ms across several idle windows;
	// each frame re-arms its deadline, so it must never be reaped.
	for i := 0; i < 10; i++ {
		if _, err := active.Ping(); err != nil {
			t.Fatalf("active connection reaped on ping %d: %v", i, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	waitUntil(t, 2*time.Second, func() bool { return srv.idleCloses.Load() >= 1 })
	if _, err := idle.Ping(); err == nil {
		t.Fatal("ping on the reaped idle connection succeeded")
	}

	fresh, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	rep, err := fresh.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Robustness == nil || rep.Robustness.IdleCloses < 1 {
		t.Fatalf("stats do not report the idle close: %+v", rep.Robustness)
	}
}

// TestOverloadShedsLoudly fills the in-flight semaphore and checks the
// next frame is refused with a typed overload error — shed before
// execution, connection kept open — instead of queueing without bound.
func TestOverloadShedsLoudly(t *testing.T) {
	srv, addr := startCfgServer(t, Config{MaxInFlight: 1})

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Occupy the only execution slot, as a long-running plan would.
	srv.inflight <- struct{}{}
	_, err = cli.Ping()
	if err == nil {
		t.Fatal("ping during a full in-flight window succeeded, want overload refusal")
	}
	if !wire.IsOverload(err.Error()) {
		t.Fatalf("refusal is not the typed overload error: %v", err)
	}
	if srv.overloads.Load() != 1 {
		t.Fatalf("overload counter is %d, want 1", srv.overloads.Load())
	}
	<-srv.inflight

	// The connection survived the shed and works once the window clears.
	if _, err := cli.Ping(); err != nil {
		t.Fatalf("ping after the overload window failed: %v", err)
	}
	rep, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Robustness == nil || rep.Robustness.Overloads != 1 || rep.Robustness.MaxInFlight != 1 {
		t.Fatalf("stats do not report the shed: %+v", rep.Robustness)
	}
}

// TestChecksumRefusalClosesConnection sends a frame whose CRC does not
// match its payload: the server must refuse it with the checksum error,
// count it, and hang up — a desynchronized stream cannot be re-framed.
func TestChecksumRefusalClosesConnection(t *testing.T) {
	srv, addr := startCfgServer(t, Config{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.ClientHandshake(conn); err != nil {
		t.Fatal(err)
	}

	// A valid ping frame with its checksum flipped.
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, wire.TypePing, nil); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[len(frame)-1] ^= 0xFF
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	msgType, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("no refusal reply: %v", err)
	}
	if msgType != wire.TypeError || !strings.Contains(string(payload), wire.ErrFrameChecksum.Error()) {
		t.Fatalf("refusal is type %d payload %q, want the checksum error", msgType, payload)
	}
	if _, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("connection still open after a checksum refusal")
	}
	if srv.checksumErrors.Load() != 1 {
		t.Fatalf("checksum counter is %d, want 1", srv.checksumErrors.Load())
	}
}

// TestServeThroughFaultnetListener runs the server behind a fault-injecting
// listener adding latency to every accepted connection: the protocol must
// work unchanged through the wrapped conns, and slow-but-live clients must
// not trip the idle reaper.
func TestServeThroughFaultnetListener(t *testing.T) {
	h := prf.NewBiased(bytes.Repeat([]byte{0x11}, prf.MinKeyBytes), prf.MustProb(0.25))
	eng, err := engine.New(h, sketch.MustParams(0.25, 10))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(eng, Config{ReadIdleTimeout: time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fab := faultnet.NewFabric(11)
	ep := fab.Endpoint("server")
	ep.SetDefaultPlan(faultnet.Plan{ReadDelay: 20 * time.Millisecond, WriteDelay: 5 * time.Millisecond})
	addr := srv.Serve(ep.Listen(ln, "client"))
	t.Cleanup(func() { srv.Close() })

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		if _, err := cli.Ping(); err != nil {
			t.Fatalf("ping %d through the fault listener failed: %v", i, err)
		}
	}
	rep, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Robustness == nil || rep.Robustness.IdleCloses != 0 {
		t.Fatalf("slow-but-live client tripped the reaper: %+v", rep.Robustness)
	}
}
