// Package server provides the TCP collection daemon and its client: users
// publish sketches over the wire protocol, analysts run conjunctive queries
// remotely.  The server holds only public objects (the sketch table), so it
// needs no more trust than a bulletin board — exactly the deployment the
// paper's no-trusted-party mode calls for.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"sketchprivacy/internal/cluster"
	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/query"
	"sketchprivacy/internal/wire"
)

// Server accepts publish and query frames over TCP and applies them to an
// engine.
type Server struct {
	eng *engine.Engine

	// epoch is the highest ring epoch this node has observed, learned from
	// hello handshakes, pings, ownership filters and transfer pushes.  A
	// partial query built for an older epoch is refused (wire.StaleEpochError)
	// so results computed under a superseded ring are never merged into an
	// estimate — the router retries under a fresh ring snapshot instead.
	epoch atomic.Uint64

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// New creates a server around an engine.
func New(eng *engine.Engine) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.  Serving happens on background goroutines
// until Close is called.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener, closes every open connection and waits for
// the handler goroutines to finish.  Closing the connections (rather
// than waiting for clients to hang up) is what lets a daemon with idle
// clients still reach its final store flush on shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.listener
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// track registers a live connection, or refuses it when the server is
// already closing.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle serves one connection until it closes, a protocol error occurs
// or the server shuts down.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	for {
		msgType, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch msgType {
		case wire.TypePublish:
			pub, err := wire.DecodePublished(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			if err := s.eng.Ingest(pub); err != nil {
				s.writeError(conn, err)
				continue
			}
			_ = wire.WriteFrame(conn, wire.TypeAck, nil)
		case wire.TypeQuery:
			q, err := wire.DecodeQuery(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			est, err := s.eng.Conjunction(q.Subset, q.Value)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			res := wire.Result{Fraction: est.Fraction, Raw: est.Raw, Users: uint64(est.Users)}
			_ = wire.WriteFrame(conn, wire.TypeResult, wire.EncodeResult(res))
		case wire.TypeStats:
			// Unlike publish/query replies, a stats payload has no fixed
			// size bound, so a frame-too-large failure must still send
			// *something* or the client blocks forever awaiting a reply.
			if err := wire.WriteFrame(conn, wire.TypeStatsReply, wire.EncodeStats(s.stats())); err != nil {
				s.writeError(conn, err)
			}
		case wire.TypeHello:
			if err := wire.CheckHello(payload); err != nil {
				// Fail the handshake loudly and hang up: a mixed-version
				// peer's subsequent frames would decode as garbage, so the
				// refusal must end the connection, not just warn.
				s.writeError(conn, err)
				return
			}
			if _, epoch, has, err := wire.ParseHello(payload); err == nil && has {
				s.observeEpoch(epoch)
			}
			_ = wire.WriteFrame(conn, wire.TypeHelloAck, wire.EncodeHello())
		case wire.TypePing:
			if epoch, has, err := wire.ParsePing(payload); err == nil && has {
				s.observeEpoch(epoch)
			}
			pong := fmt.Sprintf("ok version=%d sketches=%d epoch=%d",
				wire.ProtocolVersion, s.eng.Sketches(), s.epoch.Load())
			_ = wire.WriteFrame(conn, wire.TypePong, []byte(pong))
		case wire.TypePartialQuery:
			pq, err := wire.DecodePartialQuery(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			res, err := s.partial(pq)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			_ = wire.WriteFrame(conn, wire.TypePartialResult, wire.EncodePartialResult(res))
		case wire.TypePlanQuery:
			pq, err := wire.DecodePlanQuery(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			res, err := s.plan(pq)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			_ = wire.WriteFrame(conn, wire.TypePlanResult, wire.EncodePlanResult(res))
		case wire.TypeSnapshotRead:
			req, err := wire.DecodeSnapshotRead(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			// Clamp the peer's limit: an oversized Max would materialise
			// the whole store in one reply (and overflow the frame limit
			// anyway).
			max := int(req.Max)
			if max <= 0 || max > wire.MaxTransferBatch {
				max = wire.MaxTransferBatch
			}
			records, next, done, err := s.eng.SnapshotBatch(req.Cursor, max)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			batch := wire.SnapshotBatch{Next: next, Done: done, Records: records}
			if err := wire.WriteFrame(conn, wire.TypeSnapshotBatch, wire.EncodeSnapshotBatch(batch)); err != nil {
				s.writeError(conn, err)
			}
		case wire.TypeTransferPush:
			tp, err := wire.DecodeTransferPush(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			s.observeEpoch(tp.Epoch)
			applied, err := s.applyTransfer(tp)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			_ = wire.WriteFrame(conn, wire.TypeTransferAck, wire.EncodeTransferAck(wire.TransferAck{Applied: applied}))
		default:
			s.writeError(conn, fmt.Errorf("server: unknown message type %d", msgType))
		}
	}
}

// stats assembles the TypeStats report: mechanism parameters, per-subset
// record counts and — when the engine runs on a durable store — shard,
// segment and WAL sizes.
func (s *Server) stats() wire.Stats {
	params := s.eng.Params()
	tab := s.eng.Table()
	rep := wire.Stats{
		Params:     params.String(),
		P:          params.P,
		SketchBits: params.Length,
		Sketches:   uint64(s.eng.Sketches()),
	}
	for _, b := range s.eng.Subsets() {
		rep.Subsets = append(rep.Subsets, wire.SubsetCount{
			Subset:    b.String(),
			Positions: b.Positions(),
			Count:     uint64(tab.CountForSubset(b)),
		})
	}
	if st := s.eng.Store(); st != nil {
		ss := st.Stats()
		ws := &wire.StoreStats{Dir: ss.Dir, Records: ss.Records}
		for _, sh := range ss.Shards {
			ws.Shards = append(ws.Shards, wire.ShardStats{
				Shard:          sh.Shard,
				WALBytes:       sh.WALBytes,
				WALRecords:     sh.WALRecords,
				Segments:       sh.Segments,
				SegmentBytes:   sh.SegmentBytes,
				SegmentRecords: sh.SegmentRecords,
			})
		}
		rep.Store = ws
	}
	return rep
}

// observeEpoch advances the node's view of the ring generation (it never
// goes backwards).
func (s *Server) observeEpoch(epoch uint64) {
	for {
		cur := s.epoch.Load()
		if epoch <= cur || s.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Epoch returns the highest ring epoch this server has observed.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// applyTransfer ingests a pushed batch through the engine's idempotent
// republish path, reporting how many records were newly stored.  A
// conflicting sketch — a different published object for a (user, subset)
// pair this node already holds — aborts the batch: it means two clusters
// disagree about a user's public record, which rebalancing must surface,
// never paper over.
func (s *Server) applyTransfer(tp wire.TransferPush) (uint64, error) {
	var applied uint64
	for _, p := range tp.Records {
		added, err := s.eng.IngestNew(p)
		if err != nil {
			return applied, fmt.Errorf("server: transfer of user %v: %w", p.ID, err)
		}
		if added {
			applied++
		}
	}
	return applied, nil
}

// partial answers one scatter-gather request: it compiles the query's
// ownership filter (which keeps replicated records out of the cluster-wide
// sums) and computes the requested raw counters over the owned records.
// A filter built for a superseded ring epoch is refused: merging one
// node's old-ring partial with another's new-ring partial would silently
// double-count or drop the records that moved between them.
func (s *Server) partial(pq wire.PartialQuery) (wire.PartialResult, error) {
	var epoch uint64
	if pq.Filter != nil && pq.Filter.Epoch != 0 {
		epoch = pq.Filter.Epoch
		if cur := s.epoch.Load(); epoch < cur {
			return wire.PartialResult{}, wire.StaleEpochError(epoch, cur)
		}
		s.observeEpoch(epoch)
	}
	keep, err := cluster.CompileFilter(pq.Filter)
	if err != nil {
		return wire.PartialResult{}, err
	}
	switch pq.Kind {
	case wire.PartialFraction:
		part, err := s.eng.FractionPartial(pq.Subset, pq.Value, keep)
		if err != nil {
			return wire.PartialResult{}, err
		}
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Hits: part.Hits, Records: part.Records}, nil
	case wire.PartialHistogram:
		subs := make([]query.SubQuery, len(pq.Subs))
		for i, q := range pq.Subs {
			subs[i] = query.SubQuery{Subset: q.Subset, Value: q.Value}
		}
		hp, err := s.eng.HistogramPartial(subs, keep)
		if err != nil {
			return wire.PartialResult{}, err
		}
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Users: hp.Users, Hist: hp.Hist}, nil
	case wire.PartialSubsetRecords:
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Records: s.eng.SubsetRecords(pq.Subset, keep)}, nil
	case wire.PartialTotalRecords:
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Records: s.eng.TotalRecords(keep)}, nil
	default:
		return wire.PartialResult{}, fmt.Errorf("server: unknown partial query kind %d", pq.Kind)
	}
}

// plan answers one batched scatter-gather request: it rebuilds the query
// plan from the wire form, compiles the ownership filter and executes the
// whole plan in one pass over the owned records, answering every entry in
// one reply.  Epoch semantics match partial(): a plan built for a
// superseded ring epoch is refused so the router retries under a fresh
// ring snapshot.  The reply is assembled through the plan's refs, so even
// a request listing duplicate entries (which the plan deduplicates) maps
// each requested position to its counters.
func (s *Server) plan(pq wire.PlanQuery) (wire.PlanResult, error) {
	var epoch uint64
	if pq.Filter != nil && pq.Filter.Epoch != 0 {
		epoch = pq.Filter.Epoch
		if cur := s.epoch.Load(); epoch < cur {
			return wire.PlanResult{}, wire.StaleEpochError(epoch, cur)
		}
		s.observeEpoch(epoch)
	}
	keep, err := cluster.CompileFilter(pq.Filter)
	if err != nil {
		return wire.PlanResult{}, err
	}
	p := query.NewPlan()
	fracRefs := make([]query.FracRef, len(pq.Fractions))
	for i, f := range pq.Fractions {
		if fracRefs[i], err = p.AddFraction(f.Subset, f.Value); err != nil {
			return wire.PlanResult{}, err
		}
	}
	histRefs := make([]query.HistRef, len(pq.Hists))
	for i, h := range pq.Hists {
		subs := make([]query.SubQuery, len(h.Subs))
		for j, q := range h.Subs {
			subs[j] = query.SubQuery{Subset: q.Subset, Value: q.Value}
		}
		if h.HasGuard {
			// The wire guard indexes the request's fraction list; map it
			// through the dedup to this plan's ref (the decoder already
			// bounds-checked it).
			histRefs[i], err = p.AddHistogramGuarded(subs, fracRefs[h.Guard])
		} else {
			histRefs[i], err = p.AddHistogram(subs)
		}
		if err != nil {
			return wire.PlanResult{}, err
		}
	}
	countRefs := make([]query.CountRef, len(pq.Counts))
	for i, b := range pq.Counts {
		countRefs[i] = p.AddSubsetRecords(b)
	}
	if pq.Total {
		p.AddTotalRecords()
	}
	res, err := s.eng.ExecutePlan(p, keep)
	if err != nil {
		return wire.PlanResult{}, err
	}
	out := wire.PlanResult{Epoch: epoch}
	for _, ref := range fracRefs {
		part := res.Fraction(ref)
		out.Fractions = append(out.Fractions, wire.PlanFraction{Hits: part.Hits, Records: part.Records})
	}
	for _, ref := range histRefs {
		hp := res.Histogram(ref)
		out.Hists = append(out.Hists, wire.PlanHist{Users: hp.Users, Hist: hp.Hist})
	}
	for _, ref := range countRefs {
		out.Counts = append(out.Counts, res.Count(ref))
	}
	out.Total = res.Total
	return out, nil
}

func (s *Server) writeError(conn net.Conn, err error) {
	_ = wire.WriteFrame(conn, wire.TypeError, []byte(err.Error()))
}

// ErrRemote wraps an error message reported by the server.
var ErrRemote = errors.New("server: remote error")
