// Package server provides the TCP collection daemon and its client: users
// publish sketches over the wire protocol, analysts run conjunctive queries
// remotely.  The server holds only public objects (the sketch table), so it
// needs no more trust than a bulletin board — exactly the deployment the
// paper's no-trusted-party mode calls for.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/wire"
)

// Server accepts publish and query frames over TCP and applies them to an
// engine.
type Server struct {
	eng *engine.Engine

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
}

// New creates a server around an engine.
func New(eng *engine.Engine) *Server {
	return &Server{eng: eng}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.  Serving happens on background goroutines
// until Close is called.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.listener
	s.closed = true
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle serves one connection until it closes or a protocol error occurs.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		msgType, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch msgType {
		case wire.TypePublish:
			pub, err := wire.DecodePublished(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			if err := s.eng.Ingest(pub); err != nil {
				s.writeError(conn, err)
				continue
			}
			_ = wire.WriteFrame(conn, wire.TypeAck, nil)
		case wire.TypeQuery:
			q, err := wire.DecodeQuery(payload)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			est, err := s.eng.Conjunction(q.Subset, q.Value)
			if err != nil {
				s.writeError(conn, err)
				continue
			}
			res := wire.Result{Fraction: est.Fraction, Raw: est.Raw, Users: uint64(est.Users)}
			_ = wire.WriteFrame(conn, wire.TypeResult, wire.EncodeResult(res))
		default:
			s.writeError(conn, fmt.Errorf("server: unknown message type %d", msgType))
		}
	}
}

func (s *Server) writeError(conn net.Conn, err error) {
	_ = wire.WriteFrame(conn, wire.TypeError, []byte(err.Error()))
}

// ErrRemote wraps an error message reported by the server.
var ErrRemote = errors.New("server: remote error")
