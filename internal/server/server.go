// Package server provides the TCP collection daemon and its client: users
// publish sketches over the wire protocol, analysts run conjunctive queries
// remotely.  The server holds only public objects (the sketch table), so it
// needs no more trust than a bulletin board — exactly the deployment the
// paper's no-trusted-party mode calls for.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sketchprivacy/internal/cluster"
	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/query"
	"sketchprivacy/internal/wire"
)

// Config parameterizes a Server's robustness guards.  The zero value gets
// defaults, so server.New keeps working unchanged.
type Config struct {
	// ReadIdleTimeout bounds how long a connection may sit silent between
	// frames (default 5m): a client that wedges mid-frame or goes away
	// without closing stops holding a handler goroutine and a socket
	// forever.  A fresh deadline is armed before every frame read, so a
	// chatty connection never times out.
	ReadIdleTimeout time.Duration
	// MaxInFlight bounds how many frames the server executes concurrently
	// across all connections (default 256).  Past it, requests are shed
	// with wire.OverloadError — a retryable refusal — instead of queueing
	// unboundedly; a misbehaving client cannot wedge the node for others.
	MaxInFlight int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = 5 * time.Minute
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	return c
}

// Server accepts publish and query frames over TCP and applies them to an
// engine.
type Server struct {
	eng *engine.Engine
	cfg Config

	// inflight is the frame-execution semaphore implementing MaxInFlight.
	inflight chan struct{}

	// Robustness counters, reported in stats.
	frames           atomic.Uint64 // frames served, all message types
	overloads        atomic.Uint64 // frames shed by the in-flight guard
	idleCloses       atomic.Uint64 // connections closed by the idle timeout
	checksumErrors   atomic.Uint64 // frames refused with a CRC mismatch
	deadlineAbandons atomic.Uint64 // plans abandoned mid-execution on budget expiry

	// epoch is the highest ring epoch this node has observed, learned from
	// hello handshakes, pings, ownership filters and transfer pushes.  A
	// partial query built for an older epoch is refused (wire.StaleEpochError)
	// so results computed under a superseded ring are never merged into an
	// estimate — the router retries under a fresh ring snapshot instead.
	epoch atomic.Uint64

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// New creates a server around an engine with default guards.
func New(eng *engine.Engine) *Server {
	return NewWithConfig(eng, Config{})
}

// NewWithConfig creates a server with explicit robustness guards.
func NewWithConfig(eng *engine.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		eng:      eng,
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.  Serving happens on background goroutines
// until Close is called.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.Serve(ln), nil
}

// Serve starts accepting connections from an already-bound listener and
// returns its address.  Fault-injection tests pass a faultnet-wrapped
// listener through here; Listen delegates to it for the common case.
func (s *Server) Serve(ln net.Listener) string {
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener, closes every open connection and waits for
// the handler goroutines to finish.  Closing the connections (rather
// than waiting for clients to hang up) is what lets a daemon with idle
// clients still reach its final store flush on shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.listener
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// track registers a live connection, or refuses it when the server is
// already closing.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle serves one connection until it closes, a protocol error occurs,
// the idle timeout fires or the server shuts down.  Every frame passes
// the in-flight guard before executing: past MaxInFlight concurrently
// executing frames the request is shed with a retryable overload refusal,
// so a flood of expensive plans degrades into refusals instead of
// unbounded queueing.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	for {
		// Arm a fresh idle deadline before each frame read: a connection
		// that goes silent mid-frame or disappears without closing is
		// reaped instead of pinning a goroutine and a socket forever.
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadIdleTimeout)); err != nil {
			return
		}
		msgType, payload, err := wire.ReadFrame(conn)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.idleCloses.Add(1)
			}
			if errors.Is(err, wire.ErrFrameChecksum) {
				// The frame was read in full, so the stream is still
				// framed — but its bytes cannot be trusted.  Report the
				// corruption and hang up; the client redials.
				s.checksumErrors.Add(1)
				s.writeError(conn, err)
			}
			return
		}
		select {
		case s.inflight <- struct{}{}:
		default:
			s.overloads.Add(1)
			s.writeError(conn, wire.OverloadError(cap(s.inflight)))
			continue
		}
		keep := s.serveFrame(conn, msgType, payload)
		<-s.inflight
		if !keep {
			return
		}
	}
}

// serveFrame executes one frame, reporting whether the connection should
// stay open.
func (s *Server) serveFrame(conn net.Conn, msgType byte, payload []byte) bool {
	s.frames.Add(1)
	switch msgType {
	case wire.TypePublish:
		pub, err := wire.DecodePublished(payload)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		if err := s.eng.Ingest(pub); err != nil {
			s.writeError(conn, err)
			return true
		}
		_ = wire.WriteFrame(conn, wire.TypeAck, nil)
	case wire.TypePublishBatch:
		ps, err := wire.DecodePublishBatch(payload)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		// The batched ingest path: one commit-window entry per touched
		// store shard for the whole batch.  The single ack means every
		// record is durable; on error the client re-publishes the batch
		// through the idempotent path.
		if err := s.eng.IngestBatch(ps); err != nil {
			s.writeError(conn, err)
			return true
		}
		_ = wire.WriteFrame(conn, wire.TypeAck, nil)
	case wire.TypeQuery:
		q, err := wire.DecodeQuery(payload)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		est, err := s.eng.Conjunction(q.Subset, q.Value)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		res := wire.Result{Fraction: est.Fraction, Raw: est.Raw, Users: uint64(est.Users)}
		_ = wire.WriteFrame(conn, wire.TypeResult, wire.EncodeResult(res))
	case wire.TypeStats:
		// Unlike publish/query replies, a stats payload has no fixed
		// size bound, so a frame-too-large failure must still send
		// *something* or the client blocks forever awaiting a reply.
		if err := wire.WriteFrame(conn, wire.TypeStatsReply, wire.EncodeStats(s.stats())); err != nil {
			s.writeError(conn, err)
		}
	case wire.TypeHello:
		if err := wire.CheckHello(payload); err != nil {
			// Fail the handshake loudly and hang up: a mixed-version
			// peer's subsequent frames would decode as garbage, so the
			// refusal must end the connection, not just warn.
			s.writeError(conn, err)
			return false
		}
		if _, epoch, has, err := wire.ParseHello(payload); err == nil && has {
			s.observeEpoch(epoch)
		}
		_ = wire.WriteFrame(conn, wire.TypeHelloAck, wire.EncodeHello())
	case wire.TypePing:
		if epoch, has, err := wire.ParsePing(payload); err == nil && has {
			s.observeEpoch(epoch)
		}
		pong := fmt.Sprintf("ok version=%d sketches=%d epoch=%d",
			wire.ProtocolVersion, s.eng.Sketches(), s.epoch.Load())
		_ = wire.WriteFrame(conn, wire.TypePong, []byte(pong))
	case wire.TypePartialQuery:
		pq, err := wire.DecodePartialQuery(payload)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		res, err := s.partial(pq)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		_ = wire.WriteFrame(conn, wire.TypePartialResult, wire.EncodePartialResult(res))
	case wire.TypePlanQuery:
		pq, err := wire.DecodePlanQuery(payload)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		res, err := s.plan(pq)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		_ = wire.WriteFrame(conn, wire.TypePlanResult, wire.EncodePlanResult(res))
	case wire.TypeSnapshotRead:
		req, err := wire.DecodeSnapshotRead(payload)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		// Clamp the peer's limit: an oversized Max would materialise
		// the whole store in one reply (and overflow the frame limit
		// anyway).
		max := int(req.Max)
		if max <= 0 || max > wire.MaxTransferBatch {
			max = wire.MaxTransferBatch
		}
		records, next, done, err := s.eng.SnapshotBatch(req.Cursor, max)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		batch := wire.SnapshotBatch{Next: next, Done: done, Records: records}
		if err := wire.WriteFrame(conn, wire.TypeSnapshotBatch, wire.EncodeSnapshotBatch(batch)); err != nil {
			s.writeError(conn, err)
		}
	case wire.TypeTransferPush:
		tp, err := wire.DecodeTransferPush(payload)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		s.observeEpoch(tp.Epoch)
		applied, err := s.applyTransfer(tp)
		if err != nil {
			s.writeError(conn, err)
			return true
		}
		_ = wire.WriteFrame(conn, wire.TypeTransferAck, wire.EncodeTransferAck(wire.TransferAck{Applied: applied}))
	default:
		s.writeError(conn, fmt.Errorf("server: unknown message type %d", msgType))
	}
	return true
}

// stats assembles the TypeStats report: mechanism parameters, per-subset
// record counts and — when the engine runs on a durable store — shard,
// segment and WAL sizes.
func (s *Server) stats() wire.Stats {
	params := s.eng.Params()
	tab := s.eng.Table()
	rep := wire.Stats{
		Params:     params.String(),
		P:          params.P,
		SketchBits: params.Length,
		Sketches:   uint64(s.eng.Sketches()),
		Robustness: &wire.Robustness{
			InFlight:         len(s.inflight),
			MaxInFlight:      cap(s.inflight),
			Overloads:        s.overloads.Load(),
			IdleCloses:       s.idleCloses.Load(),
			ChecksumErrors:   s.checksumErrors.Load(),
			DeadlineAbandons: s.deadlineAbandons.Load(),
		},
	}
	for _, b := range s.eng.Subsets() {
		rep.Subsets = append(rep.Subsets, wire.SubsetCount{
			Subset:    b.String(),
			Positions: b.Positions(),
			Count:     uint64(tab.CountForSubset(b)),
		})
	}
	if st := s.eng.Store(); st != nil {
		ss := st.Stats()
		ws := &wire.StoreStats{Dir: ss.Dir, Records: ss.Records}
		for _, sh := range ss.Shards {
			ws.Shards = append(ws.Shards, wire.ShardStats{
				Shard:          sh.Shard,
				WALBytes:       sh.WALBytes,
				WALRecords:     sh.WALRecords,
				Segments:       sh.Segments,
				SegmentBytes:   sh.SegmentBytes,
				SegmentRecords: sh.SegmentRecords,
			})
		}
		rep.Store = ws
	}
	return rep
}

// observeEpoch advances the node's view of the ring generation (it never
// goes backwards).
func (s *Server) observeEpoch(epoch uint64) {
	for {
		cur := s.epoch.Load()
		if epoch <= cur || s.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Epoch returns the highest ring epoch this server has observed.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// applyTransfer ingests a pushed batch through the engine's idempotent
// republish path, reporting how many records were newly stored.  A
// conflicting sketch — a different published object for a (user, subset)
// pair this node already holds — aborts the batch: it means two clusters
// disagree about a user's public record, which rebalancing must surface,
// never paper over.
func (s *Server) applyTransfer(tp wire.TransferPush) (uint64, error) {
	var applied uint64
	for _, p := range tp.Records {
		added, err := s.eng.IngestNew(p)
		if err != nil {
			return applied, fmt.Errorf("server: transfer of user %v: %w", p.ID, err)
		}
		if added {
			applied++
		}
	}
	return applied, nil
}

// partial answers one scatter-gather request: it compiles the query's
// ownership filter (which keeps replicated records out of the cluster-wide
// sums) and computes the requested raw counters over the owned records.
// A filter built for a superseded ring epoch is refused: merging one
// node's old-ring partial with another's new-ring partial would silently
// double-count or drop the records that moved between them.
func (s *Server) partial(pq wire.PartialQuery) (wire.PartialResult, error) {
	var epoch uint64
	if pq.Filter != nil && pq.Filter.Epoch != 0 {
		epoch = pq.Filter.Epoch
		if cur := s.epoch.Load(); epoch < cur {
			return wire.PartialResult{}, wire.StaleEpochError(epoch, cur)
		}
		s.observeEpoch(epoch)
	}
	keep, err := cluster.CompileFilter(pq.Filter)
	if err != nil {
		return wire.PartialResult{}, err
	}
	switch pq.Kind {
	case wire.PartialFraction:
		part, err := s.eng.FractionPartial(pq.Subset, pq.Value, keep)
		if err != nil {
			return wire.PartialResult{}, err
		}
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Hits: part.Hits, Records: part.Records}, nil
	case wire.PartialHistogram:
		subs := make([]query.SubQuery, len(pq.Subs))
		for i, q := range pq.Subs {
			subs[i] = query.SubQuery{Subset: q.Subset, Value: q.Value}
		}
		hp, err := s.eng.HistogramPartial(subs, keep)
		if err != nil {
			return wire.PartialResult{}, err
		}
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Users: hp.Users, Hist: hp.Hist}, nil
	case wire.PartialSubsetRecords:
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Records: s.eng.SubsetRecords(pq.Subset, keep)}, nil
	case wire.PartialTotalRecords:
		return wire.PartialResult{Kind: pq.Kind, Epoch: epoch, Records: s.eng.TotalRecords(keep)}, nil
	default:
		return wire.PartialResult{}, fmt.Errorf("server: unknown partial query kind %d", pq.Kind)
	}
}

// plan answers one batched scatter-gather request: it rebuilds the query
// plan from the wire form, compiles the ownership filter and executes the
// whole plan in one pass over the owned records, answering every entry in
// one reply.  Epoch semantics match partial(): a plan built for a
// superseded ring epoch is refused so the router retries under a fresh
// ring snapshot.  The reply is assembled through the plan's refs, so even
// a request listing duplicate entries (which the plan deduplicates) maps
// each requested position to its counters.
func (s *Server) plan(pq wire.PlanQuery) (wire.PlanResult, error) {
	var epoch uint64
	if pq.Filter != nil && pq.Filter.Epoch != 0 {
		epoch = pq.Filter.Epoch
		if cur := s.epoch.Load(); epoch < cur {
			return wire.PlanResult{}, wire.StaleEpochError(epoch, cur)
		}
		s.observeEpoch(epoch)
	}
	keep, err := cluster.CompileFilter(pq.Filter)
	if err != nil {
		return wire.PlanResult{}, err
	}
	p := query.NewPlan()
	fracRefs := make([]query.FracRef, len(pq.Fractions))
	for i, f := range pq.Fractions {
		if fracRefs[i], err = p.AddFraction(f.Subset, f.Value); err != nil {
			return wire.PlanResult{}, err
		}
	}
	histRefs := make([]query.HistRef, len(pq.Hists))
	for i, h := range pq.Hists {
		subs := make([]query.SubQuery, len(h.Subs))
		for j, q := range h.Subs {
			subs[j] = query.SubQuery{Subset: q.Subset, Value: q.Value}
		}
		if h.HasGuard {
			// The wire guard indexes the request's fraction list; map it
			// through the dedup to this plan's ref (the decoder already
			// bounds-checked it).
			histRefs[i], err = p.AddHistogramGuarded(subs, fracRefs[h.Guard])
		} else {
			histRefs[i], err = p.AddHistogram(subs)
		}
		if err != nil {
			return wire.PlanResult{}, err
		}
	}
	countRefs := make([]query.CountRef, len(pq.Counts))
	for i, b := range pq.Counts {
		countRefs[i] = p.AddSubsetRecords(b)
	}
	if pq.Total {
		p.AddTotalRecords()
	}
	// Execute under the query's remaining end-to-end budget, when the
	// filter carries one: work the router has stopped waiting for is
	// abandoned at the next work-unit boundary instead of burning cores
	// to compute an answer nobody reads.
	ctx := context.Background()
	if pq.Filter != nil && pq.Filter.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(pq.Filter.Budget)*time.Millisecond)
		defer cancel()
	}
	res, err := s.eng.ExecutePlanCtx(ctx, p, keep)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.deadlineAbandons.Add(1)
			return wire.PlanResult{}, wire.DeadlineError(pq.Filter.Budget)
		}
		return wire.PlanResult{}, err
	}
	out := wire.PlanResult{Epoch: epoch}
	for _, ref := range fracRefs {
		part := res.Fraction(ref)
		out.Fractions = append(out.Fractions, wire.PlanFraction{Hits: part.Hits, Records: part.Records})
	}
	for _, ref := range histRefs {
		hp := res.Histogram(ref)
		out.Hists = append(out.Hists, wire.PlanHist{Users: hp.Users, Hist: hp.Hist})
	}
	for _, ref := range countRefs {
		out.Counts = append(out.Counts, res.Count(ref))
	}
	out.Total = res.Total
	return out, nil
}

func (s *Server) writeError(conn net.Conn, err error) {
	_ = wire.WriteFrame(conn, wire.TypeError, []byte(err.Error()))
}

// ErrRemote wraps an error message reported by the server.
var ErrRemote = errors.New("server: remote error")
