package server

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/dataset"
	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/prf"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/stats"
)

func startTestServer(t *testing.T, p float64, length int) (*Server, string, *prf.Biased, sketch.Params) {
	t.Helper()
	h := prf.NewBiased(bytes.Repeat([]byte{0x11}, prf.MinKeyBytes), prf.MustProb(p))
	params := sketch.MustParams(p, length)
	eng, err := engine.New(h, params)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, h, params
}

func TestPublishAndQueryOverTCP(t *testing.T) {
	const m = 4000
	p := 0.25
	_, addr, h, params := startTestServer(t, p, 10)

	pop := dataset.UniformBinary(3, m, 4, 0.5)
	subset := bitvec.MustSubset(0, 1)
	sk, err := sketch.NewSketcher(h, params)
	if err != nil {
		t.Fatal(err)
	}

	// Several concurrent clients publish disjoint slices of the population.
	const clients = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	per := m / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			rng := stats.NewRNG(uint64(100 + c))
			for _, profile := range pop.Profiles[c*per : (c+1)*per] {
				pubs, err := sk.SketchAll(rng, profile, []bitvec.Subset{subset})
				if err != nil {
					errCh <- err
					return
				}
				if err := cli.PublishAll(pubs); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// An analyst queries remotely.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	v := bitvec.MustFromString("11")
	res, err := cli.QueryConjunction(subset, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Users != m {
		t.Errorf("Users = %d, want %d", res.Users, m)
	}
	truth := pop.TrueFraction(subset, v)
	if math.Abs(res.Fraction-truth) > 0.08 {
		t.Errorf("remote estimate %v vs truth %v", res.Fraction, truth)
	}
}

// TestConcurrentPublishAndQueryOverTCP mixes publishing clients with
// querying clients on one live server (run under -race): the wire layer,
// the engine and the snapshot-cached table must tolerate analysts reading
// while users are still streaming sketches in.
func TestConcurrentPublishAndQueryOverTCP(t *testing.T) {
	const m = 2000
	p := 0.25
	_, addr, h, params := startTestServer(t, p, 10)

	pop := dataset.UniformBinary(9, m, 4, 0.5)
	subset := bitvec.MustSubset(0, 1)
	v := bitvec.MustFromString("11")
	sk, err := sketch.NewSketcher(h, params)
	if err != nil {
		t.Fatal(err)
	}

	// Seed a first batch so queries racing the writers always have data.
	seedCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	const seeded = m / 2
	for _, profile := range pop.Profiles[:seeded] {
		pubs, err := sk.SketchAll(rng, profile, []bitvec.Subset{subset})
		if err != nil {
			t.Fatal(err)
		}
		if err := seedCli.PublishAll(pubs); err != nil {
			t.Fatal(err)
		}
	}
	seedCli.Close()

	// Pre-sketch the remaining records (the RNG is single-goroutine).
	rest := make([][]sketch.Published, 0, m-seeded)
	for _, profile := range pop.Profiles[seeded:] {
		pubs, err := sk.SketchAll(rng, profile, []bitvec.Subset{subset})
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, pubs)
	}

	const writers, readers = 2, 3
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	per := len(rest) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(batches [][]sketch.Published) {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			for _, pubs := range batches {
				if err := cli.PublishAll(pubs); err != nil {
					errCh <- err
					return
				}
			}
		}(rest[w*per : (w+1)*per])
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			for i := 0; i < 25; i++ {
				res, err := cli.QueryConjunction(subset, v)
				if err != nil {
					errCh <- err
					return
				}
				if res.Users < seeded || res.Users > m {
					errCh <- errors.New("mid-ingest query saw an impossible user count")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestServerReportsErrors(t *testing.T) {
	_, addr, _, _ := startTestServer(t, 0.3, 8)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Query for a subset nobody sketched.
	_, err = cli.QueryConjunction(bitvec.MustSubset(7), bitvec.MustFromString("1"))
	if !errors.Is(err, ErrRemote) {
		t.Errorf("expected remote error, got %v", err)
	}
	// Re-publishing the identical sketch is an idempotent ack (replicated
	// publish retries depend on it); a conflicting sketch for the same
	// (user, subset) is refused but the connection stays usable.
	pub := sketch.Published{ID: 1, Subset: bitvec.MustSubset(0), S: sketch.Sketch{Key: 1, Length: 8}}
	if err := cli.Publish(pub); err != nil {
		t.Fatal(err)
	}
	if err := cli.Publish(pub); err != nil {
		t.Errorf("identical re-publish err = %v, want idempotent ack", err)
	}
	conflict := pub
	conflict.S.Key = 2
	if err := cli.Publish(conflict); !errors.Is(err, ErrRemote) {
		t.Errorf("conflicting publish err = %v", err)
	}
	if err := cli.Publish(sketch.Published{ID: 2, Subset: bitvec.MustSubset(0), S: sketch.Sketch{Key: 2, Length: 8}}); err != nil {
		t.Errorf("connection unusable after error: %v", err)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	srv, addr, _, _ := startTestServer(t, 0.3, 8)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Error("dial succeeded after Close")
	}
}
