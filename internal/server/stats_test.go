package server

import (
	"bytes"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/prf"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/store"
)

// TestStatsOverTCP exercises the stats opcode end to end: publishes over
// the wire land in a durable store, and the report carries per-subset
// counts plus shard/WAL/segment sizes back to the client.
func TestStatsOverTCP(t *testing.T) {
	p := 0.3
	h := prf.NewBiased(bytes.Repeat([]byte{0x11}, prf.MinKeyBytes), prf.MustProb(p))
	params := sketch.MustParams(p, 10)
	st, err := store.Open(store.Options{Dir: t.TempDir(), Shards: 2, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng, err := engine.NewWithStore(h, params, st)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	subA := bitvec.MustSubset(0, 1)
	subB := bitvec.MustSubset(2)
	for i := 1; i <= 30; i++ {
		if err := cli.Publish(sketch.Published{ID: bitvec.UserID(i), Subset: subA, S: sketch.Sketch{Key: uint64(i), Length: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 12; i++ {
		if err := cli.Publish(sketch.Published{ID: bitvec.UserID(i), Subset: subB, S: sketch.Sketch{Key: uint64(i), Length: 10}}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sketches != 42 {
		t.Fatalf("Sketches = %d, want 42", rep.Sketches)
	}
	if rep.P != p || rep.SketchBits != 10 || rep.Params == "" {
		t.Fatalf("params not reported: %+v", rep)
	}
	counts := map[string]uint64{}
	for _, sc := range rep.Subsets {
		counts[sc.Subset] = sc.Count
	}
	if counts[subA.String()] != 30 || counts[subB.String()] != 12 {
		t.Fatalf("per-subset counts wrong: %v", counts)
	}
	if rep.Store == nil {
		t.Fatal("durable store missing from stats report")
	}
	if rep.Store.Records != 42 || len(rep.Store.Shards) != 2 {
		t.Fatalf("store stats wrong: %+v", rep.Store)
	}
	var walBytes int64
	for _, sh := range rep.Store.Shards {
		walBytes += sh.WALBytes
	}
	if walBytes == 0 {
		t.Fatal("expected non-empty WALs in stats report")
	}
}

// TestStatsMemoryOnly checks the report for an engine with no store.
func TestStatsMemoryOnly(t *testing.T) {
	_, addr, _, _ := startTestServer(t, 0.3, 10)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rep, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Store != nil {
		t.Fatalf("memory-only server reported a store: %+v", rep.Store)
	}
	if rep.Sketches != 0 || len(rep.Subsets) != 0 {
		t.Fatalf("empty server reported records: %+v", rep)
	}
}
