package server

import (
	"net"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// dialRaw opens a handshaken wire connection for opcode-level tests.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := wire.ClientHandshake(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

// roundTripRaw runs one request/response exchange.
func roundTripRaw(t *testing.T, conn net.Conn, msgType byte, payload []byte) (byte, []byte) {
	t.Helper()
	if err := wire.WriteFrame(conn, msgType, payload); err != nil {
		t.Fatal(err)
	}
	replyType, reply, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return replyType, reply
}

// TestSnapshotReadAndTransferPush drives the rebalance data plane at the
// node level: records pushed in a transfer batch become queryable, a
// re-push is idempotent (zero newly applied), the snapshot stream returns
// exactly the stored records, and a conflicting transfer is refused.
func TestSnapshotReadAndTransferPush(t *testing.T) {
	srv, addr, _, _ := startTestServer(t, 0.3, 10)
	conn := dialRaw(t, addr)

	records := []sketch.Published{
		{ID: 1, Subset: bitvec.MustSubset(0, 2), S: sketch.Sketch{Key: 7, Length: 10}},
		{ID: 2, Subset: bitvec.MustSubset(0, 2), S: sketch.Sketch{Key: 8, Length: 10}},
		{ID: 2, Subset: bitvec.MustSubset(1), S: sketch.Sketch{Key: 9, Length: 10}},
	}
	push := wire.EncodeTransferPush(wire.TransferPush{Epoch: 5, Records: records})
	replyType, reply := roundTripRaw(t, conn, wire.TypeTransferPush, push)
	if replyType != wire.TypeTransferAck {
		t.Fatalf("transfer push answered with type %d: %s", replyType, reply)
	}
	ack, err := wire.DecodeTransferAck(reply)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied != 3 {
		t.Fatalf("push applied %d records, want 3", ack.Applied)
	}
	if srv.Epoch() != 5 {
		t.Fatalf("push did not advance the node epoch: %d", srv.Epoch())
	}

	// Idempotent re-push: acknowledged, nothing newly applied.
	replyType, reply = roundTripRaw(t, conn, wire.TypeTransferPush, push)
	if replyType != wire.TypeTransferAck {
		t.Fatalf("re-push answered with type %d: %s", replyType, reply)
	}
	if ack, err = wire.DecodeTransferAck(reply); err != nil || ack.Applied != 0 {
		t.Fatalf("re-push applied %d records (%v), want 0", ack.Applied, err)
	}

	// Snapshot stream returns exactly the stored records.
	var streamed []sketch.Published
	cursor := uint64(0)
	for {
		req := wire.EncodeSnapshotRead(wire.SnapshotRead{Cursor: cursor, Max: 2})
		replyType, reply = roundTripRaw(t, conn, wire.TypeSnapshotRead, req)
		if replyType != wire.TypeSnapshotBatch {
			t.Fatalf("snapshot read answered with type %d: %s", replyType, reply)
		}
		batch, err := wire.DecodeSnapshotBatch(reply)
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, batch.Records...)
		if batch.Done {
			break
		}
		cursor = batch.Next
	}
	if len(streamed) != len(records) {
		t.Fatalf("snapshot streamed %d records, want %d", len(streamed), len(records))
	}
	for _, want := range records {
		found := false
		for _, got := range streamed {
			if got.ID == want.ID && got.Subset.Key() == want.Subset.Key() && got.S == want.S {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("record %+v missing from snapshot stream", want)
		}
	}

	// A conflicting sketch for an existing (user, subset) is refused.
	conflict := records[0]
	conflict.S.Key ^= 1
	bad := wire.EncodeTransferPush(wire.TransferPush{Epoch: 5, Records: []sketch.Published{conflict}})
	replyType, reply = roundTripRaw(t, conn, wire.TypeTransferPush, bad)
	if replyType != wire.TypeError {
		t.Fatalf("conflicting transfer answered with type %d, want TypeError", replyType)
	}
}

// TestPartialQueryStaleEpoch pins the node-side guard: once the node has
// observed epoch E, a partial query whose filter was built for an older
// epoch is refused with the recognisable marker, while the current epoch
// keeps working.
func TestPartialQueryStaleEpoch(t *testing.T) {
	srv, addr, _, _ := startTestServer(t, 0.3, 10)
	conn := dialRaw(t, addr)

	self := addr
	mkQuery := func(epoch uint64) []byte {
		return wire.EncodePartialQuery(wire.PartialQuery{
			Kind: wire.PartialTotalRecords,
			Filter: &wire.Filter{
				Epoch:  epoch,
				Nodes:  []string{self},
				VNodes: 8,
				Self:   self,
				Live:   []string{self},
			},
		})
	}
	// Epoch 4 accepted and observed.
	replyType, reply := roundTripRaw(t, conn, wire.TypePartialQuery, mkQuery(4))
	if replyType != wire.TypePartialResult {
		t.Fatalf("epoch-4 partial answered with type %d: %s", replyType, reply)
	}
	res, err := wire.DecodePartialResult(reply)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 4 {
		t.Fatalf("partial result echoes epoch %d, want 4", res.Epoch)
	}
	if srv.Epoch() != 4 {
		t.Fatalf("node observed epoch %d, want 4", srv.Epoch())
	}
	// Epoch 3 now stale.
	replyType, reply = roundTripRaw(t, conn, wire.TypePartialQuery, mkQuery(3))
	if replyType != wire.TypeError || !wire.IsStaleEpoch(string(reply)) {
		t.Fatalf("stale partial answered with type %d: %s", replyType, reply)
	}
	// Epoch 0 (no epoch — single-node tooling) still accepted.
	replyType, _ = roundTripRaw(t, conn, wire.TypePartialQuery, mkQuery(0))
	if replyType != wire.TypePartialResult {
		t.Fatalf("epoch-less partial answered with type %d", replyType)
	}
	// Ping also exchanges the epoch.
	replyType, reply = roundTripRaw(t, conn, wire.TypePing, wire.EncodePingEpoch(9))
	if replyType != wire.TypePong {
		t.Fatalf("ping answered with type %d", replyType)
	}
	if srv.Epoch() != 9 {
		t.Fatalf("ping did not advance the epoch: %d", srv.Epoch())
	}
}
