package server

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// startVersionServer brings up a server on a loopback port and registers
// its teardown.
func startVersionServer(t *testing.T) string {
	t.Helper()
	srv, addr, _, _ := startTestServer(t, 0.3, 10)
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestVersionHandshakeMismatch is the mixed-version regression test: a
// peer announcing a different protocol version must be refused with a
// clear error naming both versions — never a decode panic or a silently
// wrong answer.
func TestVersionHandshakeMismatch(t *testing.T) {
	addr := startVersionServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.TypeHello, []byte{wire.ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.TypeError {
		t.Fatalf("future-version hello answered with type %d, want TypeError", msgType)
	}
	msg := string(payload)
	if !strings.Contains(msg, "version mismatch") ||
		!strings.Contains(msg, fmt.Sprintf("v%d", wire.ProtocolVersion+1)) ||
		!strings.Contains(msg, fmt.Sprintf("v%d", wire.ProtocolVersion)) {
		t.Fatalf("mismatch error does not name both versions: %q", msg)
	}
}

// TestDialRefusesPreHandshakeServer: dialing a peer too old to know the
// hello opcode (it answers with its unknown-message error, as the
// pre-cluster server did) fails loudly at Dial time.
func TestDialRefusesPreHandshakeServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		msgType, _, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		// Exactly what a pre-cluster server's default branch answers.
		_ = wire.WriteFrame(conn, wire.TypeError, []byte(fmt.Sprintf("server: unknown message type %d", msgType)))
	}()
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("Dial accepted a peer that does not speak the handshake")
	} else if !strings.Contains(err.Error(), "handshake refused") {
		t.Fatalf("legacy-peer error not loud about the handshake: %v", err)
	}
}

// TestLegacyClientStillServed: a pre-handshake client that never sends a
// hello keeps working against a new server — version enforcement tightens
// only the new cluster paths, it does not strand deployed user agents.
func TestLegacyClientStillServed(t *testing.T) {
	addr := startVersionServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pub := sketch.Published{ID: 5, Subset: bitvec.MustSubset(0), S: sketch.Sketch{Key: 3, Length: 10}}
	if err := wire.WriteFrame(conn, wire.TypePublish, wire.EncodePublished(pub)); err != nil {
		t.Fatal(err)
	}
	msgType, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.TypeAck {
		t.Fatalf("legacy publish answered with type %d, want TypeAck", msgType)
	}
}
