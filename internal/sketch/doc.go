// Package sketch implements the paper's primary contribution: the
// pseudorandom sketching mechanism of Mishra & Sandler, "Privacy via
// Pseudorandom Sketches" (PODS 2006).
//
// A user with public identifier id and private profile d sketches a subset
// of attributes B by running Algorithm 1: repeatedly draw a candidate key s
// uniformly at random without replacement from the 2^ℓ possible ℓ-bit keys;
// if the public p-biased function H(id, B, d_B, s) evaluates to 1 the key is
// published immediately, otherwise it is published anyway with probability
// p²/(1−p)² and rejected otherwise.  The published key — the sketch — is
// therefore skewed so that H is biased towards 1 at the user's true value
// (probability 1−p) and towards 0 at every other value (probability p,
// Lemma 3.2), while revealing almost nothing about which value is the true
// one: the likelihood ratio of any sketch under any two candidate profiles
// is at most ((1−p)/p)⁴ (Lemma 3.3).
//
// The package provides:
//
//   - Params: the (p, ℓ) configuration with the Lemma 3.1 length bound, the
//     Corollary 3.4 privacy budget arithmetic and the running-time bounds;
//   - Sketcher: Algorithm 1, generic over any prf.BitSource;
//   - Published and Table: the published (id, B, s) records and a
//     concurrency-safe store of them, which is all an analyst ever sees;
//   - Evaluate: the H(id, B, v, s) evaluation shared with the query
//     estimators.
package sketch
