package sketch

import (
	"encoding/binary"
	"math/bits"
	"sync"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/prf"
)

// Kernel is a single-goroutine batch evaluator for the public function H,
// specialised to one query pair (B, v).  The tuple components every record
// of an Algorithm 2 query shares — the subset tag and the candidate value —
// are encoded once at Reset; per-record evaluation then only splices the
// 8-byte user id and the sketch key into reusable scratch and runs the
// midstate-cached HMAC, performing no allocations and taking no locks.
//
// A Kernel is not safe for concurrent use.  Parallel record loops create
// one per worker goroutine (directly or via AcquireKernel).
type Kernel struct {
	h  prf.BitSource
	es prf.EvaluatorSource // nil → fall back to h.Bit
	be prf.BitEvaluator

	b bitvec.Subset
	v bitvec.Vector
	// mid holds the length-prefixed (B, v) tuple parts shared by every
	// record of the query.
	mid     []byte
	scratch []byte
	// Word-batch staging: up to 64 assembled messages live contiguously in
	// msgBuf, sliced out via offs after the buffer stops growing (so the
	// sub-slices never alias a stale backing array).
	msgBuf []byte
	offs   []int
	msgs   [][]byte
}

// NewKernel returns a kernel specialised to (h, b, v).
func NewKernel(h prf.BitSource, b bitvec.Subset, v bitvec.Vector) *Kernel {
	k := &Kernel{}
	k.Reset(h, b, v)
	return k
}

// Reset respecialises the kernel to a new source and query pair, reusing
// its internal buffers.
func (k *Kernel) Reset(h prf.BitSource, b bitvec.Subset, v bitvec.Vector) {
	k.h, k.b, k.v = h, b, v
	k.es = nil
	if es, ok := h.(prf.EvaluatorSource); ok {
		k.es = es
		es.BindEvaluator(&k.be)
		mid := prf.AppendPartHeader(k.mid[:0], b.TagLen())
		mid = b.AppendTag(mid)
		mid = prf.AppendPartHeader(mid, v.EncodedLen())
		k.mid = v.AppendBytes(mid)
	}
}

// Evaluate computes H(id, B, v, s) for one record, bit-identical to the
// package-level Evaluate.
func (k *Kernel) Evaluate(id bitvec.UserID, s Sketch) bool {
	if k.es == nil {
		return k.h.Bit(id.Bytes(), k.b.Tag(), k.v.Bytes(), s.Bytes())
	}
	msg := prf.AppendTupleHeader(k.scratch[:0], 4)
	msg = prf.AppendPartHeader(msg, 8)
	msg = binary.BigEndian.AppendUint64(msg, uint64(id))
	msg = append(msg, k.mid...)
	msg = prf.AppendPartHeader(msg, s.EncodedLen())
	msg = s.AppendBytes(msg)
	k.scratch = msg
	return k.be.BitMsg(msg)
}

// AppendRecordPrefix appends the tuple header and user-id part of the PRF
// message — the parts shared by every (B, v) evaluation of one record.  A
// plan executor evaluating many query pairs against the same record encodes
// this prefix (and the sketch suffix) once and reuses it across kernels,
// so each extra pair costs only the kernel's cached (B, v) midsection.
func AppendRecordPrefix(dst []byte, id bitvec.UserID) []byte {
	dst = prf.AppendTupleHeader(dst, 4)
	dst = prf.AppendPartHeader(dst, 8)
	return binary.BigEndian.AppendUint64(dst, uint64(id))
}

// AppendRecordSuffix appends the sketch-key part of the PRF message, shared
// by every (B, v) evaluation of one record.
func AppendRecordSuffix(dst []byte, s Sketch) []byte {
	dst = prf.AppendPartHeader(dst, s.EncodedLen())
	return s.AppendBytes(dst)
}

// EvaluateParts computes H(id, B, v, s) from a record's pre-encoded prefix
// and suffix parts, bit-identical to Evaluate: the assembled message bytes
// are exactly the ones Evaluate would build.  id and s are still taken so
// sources without the fast evaluator path (the test oracle) fall back to
// the facade transparently.
func (k *Kernel) EvaluateParts(id bitvec.UserID, s Sketch, prefix, suffix []byte) bool {
	if k.es == nil {
		return k.h.Bit(id.Bytes(), k.b.Tag(), k.v.Bytes(), s.Bytes())
	}
	msg := append(k.scratch[:0], prefix...)
	msg = append(msg, k.mid...)
	msg = append(msg, suffix...)
	k.scratch = msg
	return k.be.BitMsg(msg)
}

// EvaluateWord evaluates up to 64 records against the kernel's (B, v),
// returning the outcomes as a packed bit word: bit i is set iff record i
// matches.  The messages are staged together and hashed through the
// multi-lane PRF batch path, bit-identical to 64 Evaluate calls.
func (k *Kernel) EvaluateWord(records []Published) uint64 {
	if len(records) > 64 {
		panic("sketch: EvaluateWord takes at most 64 records")
	}
	if k.es == nil {
		var w uint64
		for i := range records {
			if k.h.Bit(records[i].ID.Bytes(), k.b.Tag(), k.v.Bytes(), records[i].S.Bytes()) {
				w |= 1 << uint(i)
			}
		}
		return w
	}
	buf, offs := k.msgBuf[:0], k.offs[:0]
	for i := range records {
		offs = append(offs, len(buf))
		buf = AppendRecordPrefix(buf, records[i].ID)
		buf = append(buf, k.mid...)
		buf = AppendRecordSuffix(buf, records[i].S)
	}
	offs = append(offs, len(buf))
	k.msgBuf, k.offs = buf, offs
	return k.be.BitMsgs64(k.sliceMsgs(len(records)))
}

// EvaluatePartsWord is EvaluateWord over pre-encoded per-record prefix and
// suffix parts (see AppendRecordPrefix/AppendRecordSuffix): prefixes[i] and
// suffixes[i] belong to records[i].  Plan executors evaluating many query
// pairs against the same 64 records encode the parts once and replay them
// through each pair's kernel, paying only the cached (B, v) midsection per
// kernel.  Bit-identical to 64 EvaluateParts calls.
func (k *Kernel) EvaluatePartsWord(records []Published, prefixes, suffixes [][]byte) uint64 {
	if len(records) > 64 {
		panic("sketch: EvaluatePartsWord takes at most 64 records")
	}
	if k.es == nil {
		var w uint64
		for i := range records {
			if k.h.Bit(records[i].ID.Bytes(), k.b.Tag(), k.v.Bytes(), records[i].S.Bytes()) {
				w |= 1 << uint(i)
			}
		}
		return w
	}
	buf, offs := k.msgBuf[:0], k.offs[:0]
	for i := range records {
		offs = append(offs, len(buf))
		buf = append(buf, prefixes[i]...)
		buf = append(buf, k.mid...)
		buf = append(buf, suffixes[i]...)
	}
	offs = append(offs, len(buf))
	k.msgBuf, k.offs = buf, offs
	return k.be.BitMsgs64(k.sliceMsgs(len(records)))
}

// sliceMsgs carves the first n staged messages out of msgBuf using the
// recorded offsets, after all appends are done.
func (k *Kernel) sliceMsgs(n int) [][]byte {
	msgs := k.msgs[:0]
	for i := 0; i < n; i++ {
		msgs = append(msgs, k.msgBuf[k.offs[i]:k.offs[i+1]])
	}
	k.msgs = msgs
	return msgs
}

// CountMatches evaluates every record against the kernel's (B, v) and
// returns how many evaluate to 1 — the inner sum of Algorithm 2.  Records
// are processed 64 at a time through the multi-lane batch path.
func (k *Kernel) CountMatches(records []Published) int {
	hits := 0
	for len(records) > 0 {
		n := len(records)
		if n > 64 {
			n = 64
		}
		hits += bits.OnesCount64(k.EvaluateWord(records[:n]))
		records = records[n:]
	}
	return hits
}

// EvaluateAll evaluates every record against the kernel's (B, v), appending
// one bool per record to out (useful for golden tests and derived queries
// that need per-record bits rather than the count).
func (k *Kernel) EvaluateAll(records []Published, out []bool) []bool {
	for len(records) > 0 {
		n := len(records)
		if n > 64 {
			n = 64
		}
		w := k.EvaluateWord(records[:n])
		for i := 0; i < n; i++ {
			out = append(out, w&(1<<uint(i)) != 0)
		}
		records = records[n:]
	}
	return out
}

// kernelPool recycles kernels (and their scratch buffers) across queries so
// facade-level calls stay allocation-free after warm-up.
var kernelPool = sync.Pool{New: func() any { return new(Kernel) }}

// AcquireKernel returns a pooled kernel reset to (h, b, v).  Callers must
// Release it when done and must not retain it afterwards.
func AcquireKernel(h prf.BitSource, b bitvec.Subset, v bitvec.Vector) *Kernel {
	k := kernelPool.Get().(*Kernel)
	k.Reset(h, b, v)
	return k
}

// Drop clears the kernel's references to the query objects while keeping
// its buffers, so embedding structs can pool the kernel themselves.
func (k *Kernel) Drop() {
	k.h, k.es = nil, nil
	k.b, k.v = bitvec.Subset{}, bitvec.Vector{}
}

// Release drops the kernel's query references and returns it to the shared
// pool.  Only kernels obtained from AcquireKernel may be Released.
func (k *Kernel) Release() {
	k.Drop()
	kernelPool.Put(k)
}

// EvaluateAll is the batch form of Evaluate for one query (B, v) over many
// records: shared tuple components are encoded once, then each record costs
// two SHA-256 compressions and no allocations.
func EvaluateAll(h prf.BitSource, records []Published, b bitvec.Subset, v bitvec.Vector, out []bool) []bool {
	k := AcquireKernel(h, b, v)
	out = k.EvaluateAll(records, out)
	k.Release()
	return out
}

// CountMatches is the batch counting form of Evaluate — the inner loop of
// Algorithm 2 for a single goroutine.
func CountMatches(h prf.BitSource, records []Published, b bitvec.Subset, v bitvec.Vector) int {
	k := AcquireKernel(h, b, v)
	hits := k.CountMatches(records)
	k.Release()
	return hits
}
