package sketch

import (
	"bytes"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/prf"
)

func kernelTestSource(p float64) *prf.Biased {
	return prf.NewBiased(bytes.Repeat([]byte{0x42}, prf.MinKeyBytes), prf.MustProb(p))
}

// kernelTestRecords builds a deterministic spread of records across ids,
// sketch keys and lengths.
func kernelTestRecords(b bitvec.Subset, n int) []Published {
	out := make([]Published, n)
	for i := range out {
		length := 4 + i%7
		out[i] = Published{
			ID:     bitvec.UserID(i * 37),
			Subset: b,
			S:      Sketch{Key: uint64(i*13) % (1 << uint(length)), Length: length},
		}
	}
	return out
}

// TestKernelMatchesFacade pins that the zero-allocation kernel path is
// bit-identical to the varargs BitSource path for the same records — the
// compatibility contract that keeps old sketches queryable.
func TestKernelMatchesFacade(t *testing.T) {
	h := kernelTestSource(0.3)
	b := bitvec.MustSubset(3, 1, 4, 15)
	v := bitvec.MustFromString("1010")
	records := kernelTestRecords(b, 200)

	k := NewKernel(h, b, v)
	for _, rec := range records {
		slow := h.Bit(rec.ID.Bytes(), b.Tag(), v.Bytes(), rec.S.Bytes())
		if got := k.Evaluate(rec.ID, rec.S); got != slow {
			t.Fatalf("kernel disagrees with BitSource path for %v/%v", rec.ID, rec.S)
		}
		if got := Evaluate(h, rec.ID, b, v, rec.S); got != slow {
			t.Fatalf("Evaluate facade disagrees with BitSource path for %v/%v", rec.ID, rec.S)
		}
	}
}

func TestKernelCountAndEvaluateAllAgree(t *testing.T) {
	h := kernelTestSource(0.25)
	b := bitvec.Range(0, 6)
	v := bitvec.MustFromString("110010")
	records := kernelTestRecords(b, 333)

	bits := EvaluateAll(h, records, b, v, nil)
	if len(bits) != len(records) {
		t.Fatalf("EvaluateAll returned %d bits for %d records", len(bits), len(records))
	}
	want := 0
	for i, rec := range records {
		one := Evaluate(h, rec.ID, b, v, rec.S)
		if bits[i] != one {
			t.Fatalf("EvaluateAll bit %d = %v, Evaluate = %v", i, bits[i], one)
		}
		if one {
			want++
		}
	}
	if got := CountMatches(h, records, b, v); got != want {
		t.Fatalf("CountMatches = %d, want %d", got, want)
	}
}

// TestKernelOracleFallback checks the non-PRF BitSource path (the truly
// random Oracle does not implement EvaluatorSource) still goes through the
// kernel API unchanged.
func TestKernelOracleFallback(t *testing.T) {
	o := prf.NewOracle(11, prf.MustProb(0.3))
	b := bitvec.MustSubset(0, 2)
	v := bitvec.MustFromString("01")
	records := kernelTestRecords(b, 50)

	k := NewKernel(o, b, v)
	for _, rec := range records {
		want := o.Bit(rec.ID.Bytes(), b.Tag(), v.Bytes(), rec.S.Bytes())
		if got := k.Evaluate(rec.ID, rec.S); got != want {
			t.Fatalf("oracle fallback disagrees for %v", rec.ID)
		}
	}
}

// TestKernelReuseAcrossQueries checks Reset fully respecialises a kernel —
// no state from the previous (B, v, key) may leak into the next query.
func TestKernelReuseAcrossQueries(t *testing.T) {
	h1 := kernelTestSource(0.3)
	h2 := prf.NewBiased(bytes.Repeat([]byte{0x77}, prf.MinKeyBytes), prf.MustProb(0.3))
	queries := []struct {
		h prf.BitSource
		b bitvec.Subset
		v bitvec.Vector
	}{
		{h1, bitvec.Range(0, 4), bitvec.MustFromString("1010")},
		{h2, bitvec.Range(0, 4), bitvec.MustFromString("1010")},
		{h1, bitvec.MustSubset(9), bitvec.MustFromString("1")},
		{h1, bitvec.Range(2, 10), bitvec.MustFromString("00110011")},
	}
	k := NewKernel(queries[0].h, queries[0].b, queries[0].v)
	for qi, q := range queries {
		k.Reset(q.h, q.b, q.v)
		records := kernelTestRecords(q.b, 64)
		for _, rec := range records {
			want := q.h.Bit(rec.ID.Bytes(), q.b.Tag(), q.v.Bytes(), rec.S.Bytes())
			if got := k.Evaluate(rec.ID, rec.S); got != want {
				t.Fatalf("query %d: reused kernel disagrees for %v", qi, rec.ID)
			}
		}
	}
}

func TestSketchAppendBytesMatchesBytes(t *testing.T) {
	for _, s := range []Sketch{
		{Key: 0, Length: 1},
		{Key: 123, Length: 10},
		{Key: 1<<30 - 1, Length: 30},
		{Key: 0xA5, Length: 8},
	} {
		if got := s.AppendBytes(nil); !bytes.Equal(got, s.Bytes()) {
			t.Errorf("AppendBytes(%v) = %x, Bytes = %x", s, got, s.Bytes())
		}
		if s.EncodedLen() != len(s.Bytes()) {
			t.Errorf("EncodedLen(%v) = %d, len(Bytes) = %d", s, s.EncodedLen(), len(s.Bytes()))
		}
	}
}
