package sketch

import (
	"errors"
	"fmt"
	"math"
)

// MaxLength is the largest supported sketch length in bits.  Lemma 3.1
// makes lengths beyond ~20 bits pointless for any realistic population
// (the bound is doubly logarithmic in M/τ); the cap keeps the
// without-replacement sampler's bookkeeping bounded.
const MaxLength = 30

// Params holds the two mechanism parameters: the bias p of the public
// function H and the sketch length ℓ in bits.
//
// p controls the privacy/utility trade-off.  It must lie strictly in
// (0, 1/2): at p = 1/2 a sketch is perfectly private but carries no signal,
// and the paper's estimators divide by (1 − 2p).  Smaller p gives better
// utility (error ∝ 1/(1−2p)) but a weaker privacy bound (the per-sketch
// likelihood-ratio bound is ((1−p)/p)⁴).
type Params struct {
	// P is the bias of the public p-biased function H.
	P float64
	// Length is the sketch length ℓ in bits; the key space has 2^Length
	// values.
	Length int
}

// Common parameter errors.
var (
	// ErrBadBias is returned when p lies outside (0, 1/2).
	ErrBadBias = errors.New("sketch: bias p must lie strictly in (0, 1/2)")
	// ErrBadLength is returned when the sketch length is not in [1, MaxLength].
	ErrBadLength = errors.New("sketch: length must lie in [1, 30] bits")
	// ErrExhausted is returned by Algorithm 1 when every key has been
	// considered and rejected (the failure event of Lemma 3.1).
	ErrExhausted = errors.New("sketch: key space exhausted without publishing (increase sketch length)")
)

// NewParams validates and returns a parameter set.
func NewParams(p float64, length int) (Params, error) {
	if math.IsNaN(p) || p <= 0 || p >= 0.5 {
		return Params{}, fmt.Errorf("%w: got %v", ErrBadBias, p)
	}
	if length < 1 || length > MaxLength {
		return Params{}, fmt.Errorf("%w: got %d", ErrBadLength, length)
	}
	return Params{P: p, Length: length}, nil
}

// MustParams is NewParams that panics on invalid input.
func MustParams(p float64, length int) Params {
	pr, err := NewParams(p, length)
	if err != nil {
		panic(err)
	}
	return pr
}

// ParamsFor returns parameters whose sketch length satisfies Lemma 3.1 for
// a population of at most m users and per-population failure probability at
// most tau.
func ParamsFor(p float64, m int, tau float64) (Params, error) {
	l, err := MinLength(p, m, tau)
	if err != nil {
		return Params{}, err
	}
	return NewParams(p, l)
}

// KeySpace returns the number of distinct keys, 2^Length.
func (pr Params) KeySpace() int { return 1 << uint(pr.Length) }

// AcceptProb returns p²/(1−p)², the probability with which Algorithm 1
// publishes a key whose evaluation is 0 (step 5 of the algorithm).  This is
// the constant that makes the published function exactly (1−p)-biased at
// the true value (Lemma 3.2).
func (pr Params) AcceptProb() float64 {
	r := pr.P / (1 - pr.P)
	return r * r
}

// TerminationProb returns the per-iteration termination probability
// p + p²/(1−p) = p/(1−p) of Algorithm 1.
func (pr Params) TerminationProb() float64 {
	return pr.P / (1 - pr.P)
}

// ExpectedIterations bounds the expected number of iterations of
// Algorithm 1.  Sampling without replacement only terminates faster than
// the geometric bound (1−p)/p, so this is an upper bound on the true
// expectation; the paper's remark states the weaker bound (1−p)²/p².
func (pr Params) ExpectedIterations() float64 {
	return (1 - pr.P) / pr.P
}

// WorstCaseIterations returns the maximum possible number of iterations,
// i.e. the key-space size (every key is tried at most once).
func (pr Params) WorstCaseIterations() int { return pr.KeySpace() }

// FailureProb returns the Lemma 3.1 per-user failure bound (1−p²)^(2^ℓ):
// the probability that Algorithm 1 rejects every key in the key space.
//
// (Per iteration the algorithm publishes with probability at least p²:
// H evaluates to 1 with probability p... the bound used in the lemma's
// proof is the product over all keys of the per-key rejection probability
// 1−p², where p² lower-bounds the probability that a key is both
// considered and accepted.)
func (pr Params) FailureProb() float64 {
	return math.Pow(1-pr.P*pr.P, float64(pr.KeySpace()))
}

// PrivacyRatio returns the Lemma 3.3 per-sketch likelihood-ratio bound
// ((1−p)/p)⁴: no attacker, however knowledgeable or computationally
// unbounded, can use a published sketch to change the odds between any two
// candidate profiles by more than this factor.
func (pr Params) PrivacyRatio() float64 {
	return math.Pow((1-pr.P)/pr.P, 4)
}

// Epsilon returns the ε of Definition 1 for a user who publishes l sketches
// under these parameters: (ratio)^l − 1, per Corollary 3.4.
func (pr Params) Epsilon(l int) float64 {
	return math.Pow(pr.PrivacyRatio(), float64(l)) - 1
}

// MinLength returns the smallest sketch length ℓ such that, with at most m
// users each sketching once, the probability that any sketch fails is at
// most tau (Lemma 3.1):
//
//	ℓ = ⌈ log₂( ln(m/τ) / |ln(1−p²)| ) ⌉
//
// so that (1−p²)^(2^ℓ) ≤ τ/m and a union bound over users gives τ.
func MinLength(p float64, m int, tau float64) (int, error) {
	if math.IsNaN(p) || p <= 0 || p >= 0.5 {
		return 0, fmt.Errorf("%w: got %v", ErrBadBias, p)
	}
	if m < 1 {
		return 0, fmt.Errorf("sketch: population size %d must be positive", m)
	}
	if tau <= 0 || tau >= 1 {
		return 0, fmt.Errorf("sketch: failure probability %v must lie in (0,1)", tau)
	}
	iterations := math.Log(float64(m)/tau) / -math.Log(1-p*p)
	l := int(math.Ceil(math.Log2(iterations)))
	if l < 1 {
		l = 1
	}
	if l > MaxLength {
		return 0, fmt.Errorf("%w: Lemma 3.1 requires %d bits for p=%v, m=%d, tau=%v", ErrBadLength, l, p, m, tau)
	}
	return l, nil
}

// BiasForBudget returns the bias p = 1/2 − ε/(16·l) that Corollary 3.4
// prescribes so that publishing l sketches keeps the overall likelihood
// ratio within 1 ± ε (to first order).  It returns an error when the
// resulting p would leave (0, 1/2).
func BiasForBudget(eps float64, l int) (float64, error) {
	if eps <= 0 || l < 1 {
		return 0, fmt.Errorf("sketch: invalid privacy budget eps=%v l=%d", eps, l)
	}
	p := 0.5 - eps/(16*float64(l))
	if p <= 0 {
		return 0, fmt.Errorf("%w: budget eps=%v over %d sketches requires p=%v", ErrBadBias, eps, l, p)
	}
	return p, nil
}

// SketchBits returns the number of bits a published sketch occupies; it is
// simply Length, restated so callers reporting wire sizes (Experiment E16)
// have a single source of truth.
func (pr Params) SketchBits() int { return pr.Length }

// String implements fmt.Stringer.
func (pr Params) String() string {
	return fmt.Sprintf("p=%.4g ℓ=%d bits (privacy ratio %.4g, failure prob %.3g)",
		pr.P, pr.Length, pr.PrivacyRatio(), pr.FailureProb())
}
