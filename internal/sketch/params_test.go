package sketch

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewParamsValidation(t *testing.T) {
	for _, bad := range []float64{0, 0.5, -0.1, 0.9, math.NaN()} {
		if _, err := NewParams(bad, 10); !errors.Is(err, ErrBadBias) {
			t.Errorf("NewParams(%v, 10) err = %v, want ErrBadBias", bad, err)
		}
	}
	for _, bad := range []int{0, -1, MaxLength + 1} {
		if _, err := NewParams(0.3, bad); !errors.Is(err, ErrBadLength) {
			t.Errorf("NewParams(0.3, %d) err = %v, want ErrBadLength", bad, err)
		}
	}
	if _, err := NewParams(0.3, 10); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestParamsDerivedQuantities(t *testing.T) {
	p := MustParams(0.3, 8)
	if p.KeySpace() != 256 {
		t.Errorf("KeySpace = %d", p.KeySpace())
	}
	if math.Abs(p.AcceptProb()-(0.3*0.3)/(0.7*0.7)) > 1e-12 {
		t.Errorf("AcceptProb = %v", p.AcceptProb())
	}
	if math.Abs(p.TerminationProb()-0.3/0.7) > 1e-12 {
		t.Errorf("TerminationProb = %v", p.TerminationProb())
	}
	if math.Abs(p.ExpectedIterations()-0.7/0.3) > 1e-12 {
		t.Errorf("ExpectedIterations = %v", p.ExpectedIterations())
	}
	if p.WorstCaseIterations() != 256 {
		t.Errorf("WorstCaseIterations = %d", p.WorstCaseIterations())
	}
	if math.Abs(p.PrivacyRatio()-math.Pow(0.7/0.3, 4)) > 1e-9 {
		t.Errorf("PrivacyRatio = %v", p.PrivacyRatio())
	}
	wantFail := math.Pow(1-0.09, 256)
	if math.Abs(p.FailureProb()-wantFail) > 1e-15 {
		t.Errorf("FailureProb = %v, want %v", p.FailureProb(), wantFail)
	}
	if p.SketchBits() != 8 {
		t.Errorf("SketchBits = %d", p.SketchBits())
	}
	if p.String() == "" {
		t.Error("String is empty")
	}
}

func TestEpsilonComposition(t *testing.T) {
	p := MustParams(0.49, 4)
	one := p.Epsilon(1)
	if math.Abs(one-(p.PrivacyRatio()-1)) > 1e-12 {
		t.Errorf("Epsilon(1) = %v", one)
	}
	if p.Epsilon(3) <= p.Epsilon(2) {
		t.Error("epsilon must grow with the number of sketches")
	}
}

func TestMinLengthSatisfiesLemma31(t *testing.T) {
	// The bound must make the per-population failure probability at most
	// tau, and one bit less must not (the bound is essentially tight up to
	// the power-of-two rounding).
	cases := []struct {
		p   float64
		m   int
		tau float64
	}{
		{0.26, 1000, 1e-3},
		{0.3, 1e6, 1e-6},
		{0.4, 1e7, 1e-6},
		{0.45, 100, 0.01},
	}
	for _, c := range cases {
		l, err := MinLength(c.p, c.m, c.tau)
		if err != nil {
			t.Fatalf("MinLength(%v,%d,%v): %v", c.p, c.m, c.tau, err)
		}
		perUser := math.Pow(1-c.p*c.p, math.Pow(2, float64(l)))
		if perUser*float64(c.m) > c.tau*(1+1e-9) {
			t.Errorf("p=%v m=%d tau=%v: ℓ=%d gives population failure %v > tau", c.p, c.m, c.tau, l, perUser*float64(c.m))
		}
	}
}

func TestMinLengthPaperRemarkTenBits(t *testing.T) {
	// "if p > 1/4, then a 10 bit sketch is sufficient for any foreseeable
	// practical use" — check an aggressive practical regime: a billion
	// users and tau = 1e-6.
	l, err := MinLength(0.2500001, 1_000_000_000, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if l > 10 {
		t.Errorf("Lemma 3.1 length for p just above 1/4, M=1e9, tau=1e-6 is %d bits, paper promises <= 10", l)
	}
}

func TestMinLengthValidation(t *testing.T) {
	if _, err := MinLength(0.5, 100, 0.01); err == nil {
		t.Error("p=0.5 accepted")
	}
	if _, err := MinLength(0.3, 0, 0.01); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := MinLength(0.3, 100, 0); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := MinLength(0.3, 100, 1); err == nil {
		t.Error("tau=1 accepted")
	}
}

func TestMinLengthMonotoneProperty(t *testing.T) {
	// More users or smaller tau never shrinks the required length.
	prop := func(mRaw uint32, tauRaw uint8) bool {
		m := int(mRaw%1_000_000) + 1
		tau := (float64(tauRaw%99) + 1) / 1000
		l1, err1 := MinLength(0.35, m, tau)
		l2, err2 := MinLength(0.35, m*10, tau)
		l3, err3 := MinLength(0.35, m, tau/10)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return l2 >= l1 && l3 >= l1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsFor(t *testing.T) {
	p, err := ParamsFor(0.4, 1_000_000, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 0.4 {
		t.Errorf("P = %v", p.P)
	}
	if p.FailureProb()*1e6 > 1e-6*(1+1e-9) {
		t.Errorf("ParamsFor length %d does not meet the failure target", p.Length)
	}
}

func TestBiasForBudget(t *testing.T) {
	p, err := BiasForBudget(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 - 0.1/(16*4)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("BiasForBudget = %v, want %v", p, want)
	}
	// The resulting parameters should keep epsilon near the requested
	// budget.  Corollary 3.4 is a first-order statement ((1+ε/q)^q ≈ 1+ε),
	// so allow the usual e^ε-style second-order slack.
	params := MustParams(p, 10)
	eps := params.Epsilon(4)
	if eps < 0.1*0.9 || eps > 0.1*1.2 {
		t.Errorf("Epsilon(4) at the prescribed bias = %v, want close to 0.1", eps)
	}
	if _, err := BiasForBudget(0, 4); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := BiasForBudget(0.5, 0); err == nil {
		t.Error("zero sketches accepted")
	}
	if _, err := BiasForBudget(100, 1); err == nil {
		t.Error("budget that forces p<=0 accepted")
	}
}

func TestPrivacyUtilityTradeoffMonotone(t *testing.T) {
	// As p approaches 1/2, privacy improves (the likelihood ratio shrinks
	// towards 1), Algorithm 1 terminates sooner on average, and the
	// failure probability at a fixed length shrinks (the per-key success
	// probability p² grows); the price is estimation error ∝ 1/(1−2p),
	// which is tested in the query package.
	loose := MustParams(0.3, 10)
	tight := MustParams(0.45, 10)
	if tight.PrivacyRatio() >= loose.PrivacyRatio() {
		t.Error("privacy ratio should shrink as p approaches 1/2")
	}
	if tight.FailureProb() >= loose.FailureProb() {
		t.Error("failure probability should shrink as p approaches 1/2 at fixed length")
	}
	if tight.ExpectedIterations() >= loose.ExpectedIterations() {
		t.Error("expected iterations should shrink as p approaches 1/2")
	}
}
