package sketch

import (
	"encoding/binary"
	"fmt"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/prf"
)

// Sketch is the value a user publishes for one attribute subset: an ℓ-bit
// key into the public function H.  It is the entire disclosure — dlog log
// O(M)e bits per subset, as the paper emphasises.
type Sketch struct {
	// Key is the published key value, in [0, 2^Length).
	Key uint64
	// Length is the key length ℓ in bits.
	Length int
}

// Valid reports whether the key fits in the declared length and the length
// is in range.
func (s Sketch) Valid() bool {
	return s.Length >= 1 && s.Length <= MaxLength && s.Key < 1<<uint(s.Length)
}

// Bytes returns a canonical encoding of the sketch key used as the s
// component of the PRF input tuple (1 byte of length, then the key
// big-endian in the minimum number of bytes).
func (s Sketch) Bytes() []byte {
	return s.AppendBytes(make([]byte, 0, s.EncodedLen()))
}

// EncodedLen returns the length of the Bytes encoding.
func (s Sketch) EncodedLen() int { return 1 + (s.Length+7)/8 }

// AppendBytes appends the Bytes encoding to dst, for callers that assemble
// PRF messages into reusable scratch without allocating.
func (s Sketch) AppendBytes(dst []byte) []byte {
	nBytes := (s.Length + 7) / 8
	dst = append(dst, byte(s.Length))
	for i := nBytes - 1; i >= 0; i-- {
		dst = append(dst, byte(s.Key>>uint(8*i)))
	}
	return dst
}

// ParseSketch reconstructs a sketch from its Bytes encoding.
func ParseSketch(b []byte) (Sketch, error) {
	if len(b) < 1 {
		return Sketch{}, fmt.Errorf("sketch: empty encoding")
	}
	length := int(b[0])
	nBytes := (length + 7) / 8
	if length < 1 || length > MaxLength {
		return Sketch{}, fmt.Errorf("%w: encoded length %d", ErrBadLength, length)
	}
	if len(b) != 1+nBytes {
		return Sketch{}, fmt.Errorf("sketch: encoding of ℓ=%d sketch must be %d bytes, got %d", length, 1+nBytes, len(b))
	}
	var tmp [8]byte
	copy(tmp[8-nBytes:], b[1:])
	s := Sketch{Key: binary.BigEndian.Uint64(tmp[:]), Length: length}
	if !s.Valid() {
		return Sketch{}, fmt.Errorf("sketch: key %d does not fit in %d bits", s.Key, length)
	}
	return s, nil
}

// String implements fmt.Stringer.
func (s Sketch) String() string { return fmt.Sprintf("sketch(%d/%d bits)", s.Key, s.Length) }

// Published is one published record: user id, the subset it describes and
// the sketch itself.  In the paper's model this triple is public; the
// profile bits it was derived from never leave the user.
type Published struct {
	ID     bitvec.UserID
	Subset bitvec.Subset
	S      Sketch
}

// Evaluate computes H(id, B, v, s) — the public evaluation shared by
// Algorithm 1 (during sketch generation) and Algorithm 2 (during querying).
// Anyone holding the published sketch can compute it for any candidate
// value v.  When h supports per-goroutine evaluators, the call goes through
// a pooled zero-allocation kernel; loops over many records for one (B, v)
// should hold a Kernel directly instead.
func Evaluate(h prf.BitSource, id bitvec.UserID, b bitvec.Subset, v bitvec.Vector, s Sketch) bool {
	if _, ok := h.(prf.EvaluatorSource); ok {
		k := AcquireKernel(h, b, v)
		r := k.Evaluate(id, s)
		k.Release()
		return r
	}
	return h.Bit(id.Bytes(), b.Tag(), v.Bytes(), s.Bytes())
}

// EvaluatePublished is Evaluate applied to a published record.
func EvaluatePublished(h prf.BitSource, p Published, v bitvec.Vector) bool {
	return Evaluate(h, p.ID, p.Subset, v, p.S)
}
