package sketch

import (
	"fmt"
	"sync"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/prf"
	"sketchprivacy/internal/stats"
)

// Sketcher runs Algorithm 1.  It holds only public objects — the public
// p-biased function H and the mechanism parameters — so a single Sketcher
// can serve every user; the user's private data and private coin flips are
// arguments to Sketch.
type Sketcher struct {
	// H is the public p-biased pseudorandom function.  Its bias must match
	// Params.P; NewSketcher enforces this.
	H prf.BitSource
	// Params carries the bias p and sketch length ℓ.
	Params Params
}

// NewSketcher validates that the bit source's bias matches the parameters
// and returns a Sketcher.
func NewSketcher(h prf.BitSource, params Params) (*Sketcher, error) {
	if _, err := NewParams(params.P, params.Length); err != nil {
		return nil, err
	}
	if h.Bias() != params.P {
		return nil, fmt.Errorf("sketch: bit source bias %v does not match params bias %v", h.Bias(), params.P)
	}
	return &Sketcher{H: h, Params: params}, nil
}

// Result reports the outcome of one run of Algorithm 1, including the
// iteration count used by the running-time experiment (E3).
type Result struct {
	S          Sketch
	Iterations int
}

// Sketch runs Algorithm 1 for the given user profile and attribute subset
// and returns the published sketch.  rng supplies the user's private coin
// flips (key selection and the accept/reject decisions); it is the only
// source of randomness the privacy guarantee depends on.
//
// ErrExhausted is returned when every key in the key space has been
// considered and rejected — the failure event bounded by Lemma 3.1.
func (sk *Sketcher) Sketch(rng *stats.RNG, profile bitvec.Profile, b bitvec.Subset) (Sketch, error) {
	res, err := sk.SketchDetailed(rng, profile, b)
	return res.S, err
}

// sketcherScratch bundles the reusable state of one SketchDetailed call —
// the batch evaluation kernel and the lazy-shuffle bookkeeping — so the hot
// path stays allocation-free across calls.
type sketcherScratch struct {
	kernel  Kernel
	swapped map[int]uint64
}

var sketcherPool = sync.Pool{
	New: func() any { return &sketcherScratch{swapped: make(map[int]uint64, 16)} },
}

// SketchDetailed is Sketch but also reports the number of iterations.
func (sk *Sketcher) SketchDetailed(rng *stats.RNG, profile bitvec.Profile, b bitvec.Subset) (Result, error) {
	if b.Len() == 0 {
		return Result{}, fmt.Errorf("sketch: cannot sketch an empty subset")
	}
	if b.Max() >= profile.Data.Len() {
		return Result{}, fmt.Errorf("sketch: subset position %d outside profile of width %d", b.Max(), profile.Data.Len())
	}
	value := b.Project(profile.Data)
	accept := sk.Params.AcceptProb()
	l := sk.Params.Length
	space := sk.Params.KeySpace()

	sc := sketcherPool.Get().(*sketcherScratch)
	sc.kernel.Reset(sk.H, b, value)
	clear(sc.swapped)
	swapped := sc.swapped
	defer func() {
		sc.kernel.Drop()
		sketcherPool.Put(sc)
	}()

	// Sample keys uniformly at random *without replacement* (step 1 of
	// Algorithm 1) using a lazy Fisher–Yates shuffle: position i of the
	// virtual permutation is drawn only when iteration i is reached, so the
	// expected work stays O(expected iterations) rather than O(2^ℓ).
	for i := 0; i < space; i++ {
		j := i + rng.Intn(space-i)
		ki, ok := swapped[i]
		if !ok {
			ki = uint64(i)
		}
		kj, ok := swapped[j]
		if !ok {
			kj = uint64(j)
		}
		swapped[i], swapped[j] = kj, ki
		candidate := Sketch{Key: kj, Length: l}

		if sc.kernel.Evaluate(profile.ID, candidate) {
			// Step 2-3: the key evaluates to 1 at the true value; publish.
			return Result{S: candidate, Iterations: i + 1}, nil
		}
		// Step 5: publish anyway with probability p²/(1−p)².
		if rng.Bernoulli(accept) {
			return Result{S: candidate, Iterations: i + 1}, nil
		}
	}
	return Result{Iterations: space}, fmt.Errorf("%w: ℓ=%d", ErrExhausted, l)
}

// SketchAll runs Algorithm 1 once per subset and returns the published
// records.  If any subset fails it returns the error immediately; Corollary
// 3.4 governs how many subsets a user should be willing to sketch at a
// given privacy budget (see Params.Epsilon and BiasForBudget).
func (sk *Sketcher) SketchAll(rng *stats.RNG, profile bitvec.Profile, subsets []bitvec.Subset) ([]Published, error) {
	out := make([]Published, 0, len(subsets))
	for _, b := range subsets {
		s, err := sk.Sketch(rng, profile, b)
		if err != nil {
			return nil, fmt.Errorf("subset %v: %w", b, err)
		}
		out = append(out, Published{ID: profile.ID, Subset: b, S: s})
	}
	return out, nil
}

// PublishProbabilities returns, for a fixed user/subset/value, the exact
// probability that Algorithm 1 publishes each key of the key space, given
// the evaluation pattern of H on that (user, subset, value).  evaluations[k]
// is H(id, B, v, key k).  The function reproduces the probability analysis
// of Lemma 3.3 (the Z^(q) quantities) in closed form and is used by the
// privacy auditor to compute exact likelihood ratios.
//
// Derivation.  The algorithm stops at the first drawn key that either
// evaluates to 1, or evaluates to 0 and is accepted (probability
// r = p²/(1−p)²).  Keys are drawn uniformly without replacement, so the only
// keys that can precede the published one are rejected 0-keys.  With
// L = len(evaluations) keys of which z evaluate to 0:
//
//	Pr[publish a specific 1-key]  = Σ_t (∏_{j<t} (z−j)/(L−j) · (1−r)) · 1/(L−t)
//	Pr[publish a specific 0-key]  = Σ_t (∏_{j<t} (z−1−j)/(L−j) · (1−r)) · 1/(L−t) · r
//
// (the t rejected keys before the target must come from the z, respectively
// z−1, other 0-keys).  For z = L−1 the first expression telescopes to the
// paper's Z^(1) = Σ (1−r)^i / L, and for z = 0 it is 1/L = Z^(L).
func PublishProbabilities(params Params, evaluations []bool) []float64 {
	n := len(evaluations)
	probs := make([]float64, n)
	if n == 0 {
		return probs
	}
	zeros := 0
	for _, e := range evaluations {
		if !e {
			zeros++
		}
	}
	accept := params.AcceptProb()

	target := func(zeroTarget bool) float64 {
		othersZero := zeros
		if zeroTarget {
			othersZero = zeros - 1
		}
		total := 0.0
		prefix := 1.0 // probability the first t draws are rejected other-0-keys
		for t := 0; t <= othersZero; t++ {
			term := prefix / float64(n-t)
			if zeroTarget {
				term *= accept
			}
			total += term
			// Extend the prefix by one more rejected 0-key.
			prefix *= float64(othersZero-t) / float64(n-t) * (1 - accept)
			if prefix == 0 {
				break
			}
		}
		return total
	}

	oneProb := target(false)
	zeroProb := 0.0
	if zeros > 0 {
		zeroProb = target(true)
	}
	for k, e := range evaluations {
		if e {
			probs[k] = oneProb
		} else {
			probs[k] = zeroProb
		}
	}
	return probs
}
