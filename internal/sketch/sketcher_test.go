package sketch

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/prf"
	"sketchprivacy/internal/stats"
)

func testSource(p float64) *prf.Biased {
	return prf.NewBiased(bytes.Repeat([]byte{7}, prf.MinKeyBytes), prf.MustProb(p))
}

func mustSketcher(t *testing.T, p float64, length int) *Sketcher {
	t.Helper()
	sk, err := NewSketcher(testSource(p), MustParams(p, length))
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestSketchBytesRoundTrip(t *testing.T) {
	cases := []Sketch{
		{Key: 0, Length: 1},
		{Key: 1, Length: 1},
		{Key: 255, Length: 8},
		{Key: 1023, Length: 10},
		{Key: 123456, Length: 20},
	}
	for _, s := range cases {
		back, err := ParseSketch(s.Bytes())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if back != s {
			t.Errorf("round trip of %v gave %v", s, back)
		}
	}
}

func TestSketchBytesRoundTripProperty(t *testing.T) {
	prop := func(key uint32, lenRaw uint8) bool {
		length := int(lenRaw%MaxLength) + 1
		s := Sketch{Key: uint64(key) & (1<<uint(length) - 1), Length: length}
		back, err := ParseSketch(s.Bytes())
		return err == nil && back == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseSketchRejectsCorrupt(t *testing.T) {
	if _, err := ParseSketch(nil); err == nil {
		t.Error("empty encoding accepted")
	}
	if _, err := ParseSketch([]byte{0, 1}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := ParseSketch([]byte{40, 1, 2, 3, 4, 5}); err == nil {
		t.Error("over-long length accepted")
	}
	good := Sketch{Key: 3, Length: 10}.Bytes()
	if _, err := ParseSketch(good[:1]); err == nil {
		t.Error("truncated encoding accepted")
	}
	// Key that does not fit in the declared length.
	if _, err := ParseSketch([]byte{2, 0xff}); err == nil {
		t.Error("key overflowing its length accepted")
	}
}

func TestSketchValid(t *testing.T) {
	if !(Sketch{Key: 3, Length: 2}).Valid() {
		t.Error("valid sketch reported invalid")
	}
	if (Sketch{Key: 4, Length: 2}).Valid() {
		t.Error("overflowing key reported valid")
	}
	if (Sketch{Key: 0, Length: 0}).Valid() {
		t.Error("zero length reported valid")
	}
}

func TestNewSketcherValidation(t *testing.T) {
	if _, err := NewSketcher(testSource(0.3), Params{P: 0.4, Length: 8}); err == nil {
		t.Error("bias mismatch accepted")
	}
	if _, err := NewSketcher(testSource(0.6), Params{P: 0.6, Length: 8}); !errors.Is(err, ErrBadBias) {
		t.Error("invalid params accepted")
	}
	if _, err := NewSketcher(testSource(0.3), MustParams(0.3, 8)); err != nil {
		t.Errorf("valid sketcher rejected: %v", err)
	}
}

func TestSketchValidatesInput(t *testing.T) {
	sk := mustSketcher(t, 0.3, 8)
	rng := stats.NewRNG(1)
	profile := bitvec.Profile{ID: 1, Data: bitvec.MustFromString("1010")}
	if _, err := sk.Sketch(rng, profile, bitvec.MustSubset()); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := sk.Sketch(rng, profile, bitvec.MustSubset(0, 7)); err == nil {
		t.Error("out-of-range subset accepted")
	}
}

func TestSketchLemma32Correctness(t *testing.T) {
	// Lemma 3.2: conditioned on success, the published sketch satisfies
	// Pr[H(id,B,d_B,s) = 1] = 1−p at the true value and Pr[H=1] = p at any
	// other value.  We estimate both probabilities over many users.
	p := 0.3
	sk := mustSketcher(t, p, 10)
	rng := stats.NewRNG(42)
	b := bitvec.MustSubset(1, 3, 5)
	trueVal := bitvec.MustFromString("101")
	otherVal := bitvec.MustFromString("011")

	const users = 20000
	hitsTrue, hitsOther := 0, 0
	for u := 0; u < users; u++ {
		d := bitvec.New(8)
		d.Set(1, true)
		d.Set(5, true)
		profile := bitvec.Profile{ID: bitvec.UserID(u + 1), Data: d}
		s, err := sk.Sketch(rng, profile, b)
		if err != nil {
			t.Fatal(err)
		}
		if Evaluate(sk.H, profile.ID, b, trueVal, s) {
			hitsTrue++
		}
		if Evaluate(sk.H, profile.ID, b, otherVal, s) {
			hitsOther++
		}
	}
	gotTrue := float64(hitsTrue) / users
	gotOther := float64(hitsOther) / users
	tol := 4 * math.Sqrt(0.25/users)
	if math.Abs(gotTrue-(1-p)) > tol {
		t.Errorf("Pr[H=1 at true value] = %v, want %v ± %v", gotTrue, 1-p, tol)
	}
	if math.Abs(gotOther-p) > tol {
		t.Errorf("Pr[H=1 at other value] = %v, want %v ± %v", gotOther, p, tol)
	}
}

func TestSketchIterationsWithinBounds(t *testing.T) {
	p := 0.3
	sk := mustSketcher(t, p, 10)
	rng := stats.NewRNG(7)
	b := bitvec.MustSubset(0, 1)
	var m stats.Moments
	for u := 0; u < 5000; u++ {
		profile := bitvec.Profile{ID: bitvec.UserID(u + 1), Data: bitvec.MustFromString("10")}
		res, err := sk.SketchDetailed(rng, profile, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations < 1 || res.Iterations > sk.Params.WorstCaseIterations() {
			t.Fatalf("iterations %d out of bounds", res.Iterations)
		}
		m.Add(float64(res.Iterations))
	}
	// The mean must respect the geometric upper bound (1-p)/p (without
	// replacement only terminates sooner), and the paper's weaker bound.
	if m.Mean() > sk.Params.ExpectedIterations()*1.1 {
		t.Errorf("mean iterations %v exceeds bound %v", m.Mean(), sk.Params.ExpectedIterations())
	}
	weaker := (1 - p) * (1 - p) / (p * p)
	if m.Mean() > weaker {
		t.Errorf("mean iterations %v exceeds the paper's bound %v", m.Mean(), weaker)
	}
}

func TestSketchFailureRateRespectsLemma31(t *testing.T) {
	// With a deliberately tiny key space the failure event becomes
	// observable; its frequency must not exceed the analytical bound.
	p := 0.3
	sk := mustSketcher(t, p, 2)
	rng := stats.NewRNG(11)
	b := bitvec.MustSubset(0)
	const trials = 30000
	failures := 0
	for u := 0; u < trials; u++ {
		profile := bitvec.Profile{ID: bitvec.UserID(u + 1), Data: bitvec.MustFromString("1")}
		_, err := sk.Sketch(rng, profile, b)
		switch {
		case errors.Is(err, ErrExhausted):
			failures++
		case err != nil:
			t.Fatal(err)
		}
	}
	bound := sk.Params.FailureProb()
	got := float64(failures) / trials
	// Allow 4-sigma sampling slack above the bound.
	slack := 4 * math.Sqrt(bound/trials)
	if got > bound+slack {
		t.Errorf("failure rate %v exceeds Lemma 3.1 bound %v", got, bound)
	}
	if failures == 0 {
		t.Log("no failures observed; bound is", bound)
	}
}

func TestSketchAllAndBudget(t *testing.T) {
	sk := mustSketcher(t, 0.4, 8)
	rng := stats.NewRNG(3)
	profile := bitvec.Profile{ID: 9, Data: bitvec.MustFromString("10110100")}
	subsets := []bitvec.Subset{
		bitvec.MustSubset(0, 1),
		bitvec.MustSubset(2, 3, 4),
		bitvec.MustSubset(5),
	}
	pubs, err := sk.SketchAll(rng, profile, subsets)
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 3 {
		t.Fatalf("published %d sketches", len(pubs))
	}
	for i, p := range pubs {
		if p.ID != 9 || !p.Subset.Equal(subsets[i]) || !p.S.Valid() {
			t.Errorf("published record %d malformed: %+v", i, p)
		}
	}
	// Bad subset aborts the whole batch.
	if _, err := sk.SketchAll(rng, profile, []bitvec.Subset{bitvec.MustSubset(99)}); err == nil {
		t.Error("out-of-range subset accepted by SketchAll")
	}
}

func TestPublishProbabilitiesMatchesPaperEdgeCases(t *testing.T) {
	params := MustParams(0.3, 3) // L = 8 keys
	L := params.KeySpace()
	r := params.AcceptProb()

	// All keys evaluate to 1: every key published with probability 1/L.
	all1 := make([]bool, L)
	for i := range all1 {
		all1[i] = true
	}
	for _, pr := range PublishProbabilities(params, all1) {
		if math.Abs(pr-1.0/float64(L)) > 1e-12 {
			t.Fatalf("all-ones publish prob %v, want %v", pr, 1.0/float64(L))
		}
	}

	// Exactly one key evaluates to 1: the paper's Z^(1) = Σ (1-r)^i / L.
	one := make([]bool, L)
	one[3] = true
	var z1 float64
	for i := 0; i < L; i++ {
		z1 += math.Pow(1-r, float64(i)) / float64(L)
	}
	probs := PublishProbabilities(params, one)
	if math.Abs(probs[3]-z1) > 1e-12 {
		t.Errorf("Z(1) = %v, want %v", probs[3], z1)
	}
	// Z(1) <= 1/(rL), the bound used in Lemma 3.3.
	if probs[3] > 1/(r*float64(L))+1e-12 {
		t.Errorf("Z(1)=%v exceeds 1/(rL)=%v", probs[3], 1/(r*float64(L)))
	}
}

func TestPublishProbabilitiesTotalAndRatio(t *testing.T) {
	// For any evaluation pattern: probabilities are valid, the total
	// publish probability is at most 1, and the ratio between any two keys'
	// publish probabilities never exceeds the Lemma 3.3 envelope
	// 1/r² = ((1-p)/p)⁴, where r = (p/(1-p))² is the acceptance constant
	// (a 1-key is at most 1/r more likely to be considered than a 0-key and
	// at most 1/r more likely to be published once considered).
	params := MustParams(0.35, 4)
	prop := func(pattern uint16) bool {
		L := params.KeySpace()
		evals := make([]bool, L)
		for i := 0; i < L; i++ {
			evals[i] = pattern&(1<<uint(i)) != 0
		}
		probs := PublishProbabilities(params, evals)
		total, min, max := 0.0, math.Inf(1), 0.0
		for _, pr := range probs {
			if pr < 0 || pr > 1 {
				return false
			}
			total += pr
			if pr > 0 && pr < min {
				min = pr
			}
			if pr > max {
				max = pr
			}
		}
		if total > 1+1e-9 {
			return false
		}
		if max == 0 {
			return true
		}
		return max/min <= params.PrivacyRatio()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalPublishDistributionMatchesAnalytic(t *testing.T) {
	// Fix a user/subset/value, enumerate H's evaluations over the small key
	// space, and compare the empirical distribution of Algorithm 1's output
	// against PublishProbabilities.
	p := 0.3
	params := MustParams(p, 3)
	h := testSource(p)
	sk, err := NewSketcher(h, params)
	if err != nil {
		t.Fatal(err)
	}
	profile := bitvec.Profile{ID: 77, Data: bitvec.MustFromString("110")}
	b := bitvec.MustSubset(0, 1, 2)
	value := b.Project(profile.Data)

	L := params.KeySpace()
	evals := make([]bool, L)
	for k := 0; k < L; k++ {
		evals[k] = Evaluate(h, profile.ID, b, value, Sketch{Key: uint64(k), Length: 3})
	}
	want := PublishProbabilities(params, evals)

	const trials = 60000
	counts := make([]int, L)
	failures := 0
	rng := stats.NewRNG(5)
	for i := 0; i < trials; i++ {
		s, err := sk.Sketch(rng, profile, b)
		if errors.Is(err, ErrExhausted) {
			failures++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		counts[s.Key]++
	}
	for k := 0; k < L; k++ {
		got := float64(counts[k]) / trials
		if math.Abs(got-want[k]) > 0.012 {
			t.Errorf("key %d: empirical publish prob %v, analytic %v", k, got, want[k])
		}
	}
}
