package sketch

import (
	"fmt"
	"sort"
	"sync"

	"sketchprivacy/internal/bitvec"
)

// Table is a concurrency-safe store of published sketches, organised by the
// attribute subset they describe.  It is the analyst-side view of the world:
// everything in a Table is public.
//
// Reads are served from immutable per-subset snapshots: the sorted record
// slice for a subset is built once, cached, and shared by every concurrent
// query until the next write to that subset invalidates it.  This keeps the
// Algorithm 2 record loop allocation-free and lets queries scale across
// cores while ingestion proceeds.
type Table struct {
	mu       sync.RWMutex
	subsets  map[string]bitvec.Subset
	bySubset map[string]map[bitvec.UserID]Sketch
	// snapshots caches the sorted ForSubset result per subset key; entries
	// are dropped on writes and rebuilt lazily.  A cached slice is
	// immutable once stored.
	snapshots map[string][]Published
	// gen counts writes per subset key, so a snapshot built outside the
	// lock is only cached if no write raced the build.
	gen map[string]uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		subsets:   make(map[string]bitvec.Subset),
		bySubset:  make(map[string]map[bitvec.UserID]Sketch),
		snapshots: make(map[string][]Published),
		gen:       make(map[string]uint64),
	}
}

// Add inserts a published sketch.  Re-publishing for the same (user, subset)
// pair is rejected: each additional sketch would spend more of the user's
// privacy budget (Corollary 3.4), so the store treats it as a protocol
// error rather than silently overwriting.
func (t *Table) Add(p Published) error {
	if !p.S.Valid() {
		return fmt.Errorf("sketch: invalid sketch %v", p.S)
	}
	key := p.Subset.Key()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.bySubset[key]; !ok {
		t.bySubset[key] = make(map[bitvec.UserID]Sketch)
		t.subsets[key] = p.Subset
	}
	if _, dup := t.bySubset[key][p.ID]; dup {
		return fmt.Errorf("sketch: user %v already published a sketch for subset %v", p.ID, p.Subset)
	}
	t.bySubset[key][p.ID] = p.S
	delete(t.snapshots, key)
	t.gen[key]++
	return nil
}

// AddNew inserts p unless its (user, subset) pair already holds a sketch,
// in which case the existing sketch is returned with added=false and NO
// error: the caller decides whether the duplicate is an idempotent
// re-publish or a budget violation.  The engine's ingest path is hot under
// cluster retry convergence — every replicated retry is a duplicate here —
// so this path must not pay Add's formatted rejection error per record.
func (t *Table) AddNew(p Published) (existing Sketch, added bool, err error) {
	if !p.S.Valid() {
		return Sketch{}, false, fmt.Errorf("sketch: invalid sketch %v", p.S)
	}
	key := p.Subset.Key()
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.bySubset[key]
	if !ok {
		m = make(map[bitvec.UserID]Sketch)
		t.bySubset[key] = m
		t.subsets[key] = p.Subset
	}
	if s, dup := m[p.ID]; dup {
		return s, false, nil
	}
	m[p.ID] = p.S
	delete(t.snapshots, key)
	t.gen[key]++
	return Sketch{}, true, nil
}

// AddAll inserts a batch of published sketches, stopping at the first error.
func (t *Table) AddAll(ps []Published) error {
	for _, p := range ps {
		if err := t.Add(p); err != nil {
			return err
		}
	}
	return nil
}

// Load bulk-inserts records with replay semantics: a (user, subset) pair
// already present is skipped — first record wins, matching a durable
// store's newest-first replay order — instead of being rejected like Add's
// protocol error, because replaying a store onto a warm table is not a
// second publish.  Runs of records sharing a subset are batched under one
// key encoding and one lock acquisition for the whole call, so the
// per-record cost on the startup path is a single map insert.
func (t *Table) Load(ps []Published) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var (
		key string
		m   map[bitvec.UserID]Sketch
	)
	for i := range ps {
		p := &ps[i]
		if !p.S.Valid() {
			return fmt.Errorf("sketch: invalid sketch %v", p.S)
		}
		if m == nil || !p.Subset.Equal(ps[i-1].Subset) {
			key = p.Subset.Key()
			m = t.bySubset[key]
			if m == nil {
				m = make(map[bitvec.UserID]Sketch)
				t.bySubset[key] = m
				t.subsets[key] = p.Subset
			}
			delete(t.snapshots, key)
			t.gen[key]++
		}
		if _, dup := m[p.ID]; dup {
			continue
		}
		m[p.ID] = p.S
	}
	return nil
}

// Remove deletes the record user id published for subset b, reporting
// whether one existed.  It exists for the engine's durability rollback —
// a record whose durable append failed must not stay queryable, or it
// would influence analysts until the restart silently drops it — and is
// not a user-facing "unpublish": the privacy spend of a published sketch
// is not recoverable.
func (t *Table) Remove(id bitvec.UserID, b bitvec.Subset) bool {
	key := b.Key()
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.bySubset[key]
	if !ok {
		return false
	}
	if _, ok := m[id]; !ok {
		return false
	}
	delete(m, id)
	if len(m) == 0 {
		delete(t.bySubset, key)
		delete(t.subsets, key)
	}
	delete(t.snapshots, key)
	t.gen[key]++
	return true
}

// Get returns the sketch user id published for subset b, if any.
func (t *Table) Get(id bitvec.UserID, b bitvec.Subset) (Sketch, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m, ok := t.bySubset[b.Key()]
	if !ok {
		return Sketch{}, false
	}
	s, ok := m[id]
	return s, ok
}

// ForSubset returns all published records for subset b, sorted by user id
// so iteration order is deterministic.  The returned slice is the caller's
// to modify.
func (t *Table) ForSubset(b bitvec.Subset) []Published {
	snap := t.Snapshot(b)
	if snap == nil {
		return nil
	}
	out := make([]Published, len(snap))
	copy(out, snap)
	return out
}

// Snapshot returns the records for subset b, sorted by user id, as a shared
// immutable slice: callers must treat it as read-only.  Repeated queries on
// a stable table reuse the cached snapshot, so the analyst-side hot path
// pays neither the copy nor the sort.
//
// A cache miss copies the records under the shared read lock and sorts
// outside any lock, so concurrent readers are never serialized behind the
// O(n log n) rebuild; the brief exclusive section only stores the result,
// and only if no write raced the build (per-subset generation check).
func (t *Table) Snapshot(b bitvec.Subset) []Published {
	key := b.Key()
	t.mu.RLock()
	if snap, ok := t.snapshots[key]; ok {
		t.mu.RUnlock()
		return snap
	}
	m, ok := t.bySubset[key]
	if !ok {
		t.mu.RUnlock()
		return nil
	}
	g := t.gen[key]
	out := make([]Published, 0, len(m))
	for id, s := range m {
		out = append(out, Published{ID: id, Subset: b, S: s})
	}
	t.mu.RUnlock()

	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })

	t.mu.Lock()
	if t.gen[key] == g {
		if cached, ok := t.snapshots[key]; ok {
			// A racing reader built and stored the same generation first;
			// share its slice.
			out = cached
		} else {
			t.snapshots[key] = out
		}
	}
	t.mu.Unlock()
	return out
}

// SnapshotGen returns the records for subset b together with the write
// generation the snapshot corresponds to.  A cached evaluation bitmap keyed
// by this generation is valid exactly as long as no write touched the
// subset: every Add/Remove bumps the generation, so a stale bitmap can
// never be popcounted against a newer record set.  ok reports whether the
// pair is generation-consistent; under sustained write pressure the method
// gives up pairing and returns the latest snapshot with ok false, telling
// the caller to skip the cache for this execution rather than poison it.
func (t *Table) SnapshotGen(b bitvec.Subset) (snap []Published, gen uint64, ok bool) {
	key := b.Key()
	for attempt := 0; attempt < 4; attempt++ {
		t.mu.RLock()
		snap, cached := t.snapshots[key]
		gen := t.gen[key]
		exists := len(t.bySubset[key]) > 0
		t.mu.RUnlock()
		if cached || !exists {
			// A cached snapshot is always the product of the current
			// generation (writes drop the cache while bumping gen under the
			// same lock), and a missing subset pairs nil with whatever
			// generation its key last saw.
			return snap, gen, true
		}
		// Populate the cache, then re-read snapshot and generation under
		// one lock so the returned pair is consistent even if a write raced
		// the build.
		t.Snapshot(b)
	}
	return t.Snapshot(b), 0, false
}

// CountForSubset returns the number of users that published a sketch for
// subset b.
func (t *Table) CountForSubset(b bitvec.Subset) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.bySubset[b.Key()])
}

// HasSubset reports whether any sketches exist for subset b.
func (t *Table) HasSubset(b bitvec.Subset) bool { return t.CountForSubset(b) > 0 }

// Subsets returns the distinct subsets present, sorted by their canonical
// tag so the order is deterministic.
func (t *Table) Subsets() []bitvec.Subset {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.subsets))
	for k := range t.subsets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]bitvec.Subset, len(keys))
	for i, k := range keys {
		out[i] = t.subsets[k]
	}
	return out
}

// UsersWithAll returns the ids of users that published a sketch for every
// one of the given subsets, sorted.  The Appendix F combination can only use
// those users.
func (t *Table) UsersWithAll(subsets []bitvec.Subset) []bitvec.UserID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(subsets) == 0 {
		return nil
	}
	first, ok := t.bySubset[subsets[0].Key()]
	if !ok {
		return nil
	}
	var ids []bitvec.UserID
	for id := range first {
		all := true
		for _, b := range subsets[1:] {
			if m, ok := t.bySubset[b.Key()]; !ok {
				return nil
			} else if _, ok := m[id]; !ok {
				all = false
				break
			}
		}
		if all {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the total number of stored sketches across all subsets.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, m := range t.bySubset {
		n += len(m)
	}
	return n
}

// SketchesPerUser returns how many sketches each user has published; the
// privacy auditor uses it to report per-user ε budgets.
func (t *Table) SketchesPerUser() map[bitvec.UserID]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[bitvec.UserID]int)
	for _, m := range t.bySubset {
		for id := range m {
			out[id]++
		}
	}
	return out
}
