package sketch

import (
	"sync"
	"testing"

	"sketchprivacy/internal/bitvec"
)

func TestTableAddGetAndDuplicates(t *testing.T) {
	tab := NewTable()
	b := bitvec.MustSubset(0, 2)
	p := Published{ID: 1, Subset: b, S: Sketch{Key: 3, Length: 4}}
	if err := tab.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(p); err == nil {
		t.Error("duplicate (user, subset) accepted")
	}
	if err := tab.Add(Published{ID: 2, Subset: b, S: Sketch{Key: 99, Length: 4}}); err == nil {
		t.Error("invalid sketch accepted")
	}
	got, ok := tab.Get(1, b)
	if !ok || got != p.S {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := tab.Get(1, bitvec.MustSubset(5)); ok {
		t.Error("Get found a sketch for an unknown subset")
	}
	if _, ok := tab.Get(9, b); ok {
		t.Error("Get found a sketch for an unknown user")
	}
}

func TestTableForSubsetSortedAndCounts(t *testing.T) {
	tab := NewTable()
	b := bitvec.MustSubset(1)
	for _, id := range []bitvec.UserID{5, 2, 9, 1} {
		if err := tab.Add(Published{ID: id, Subset: b, S: Sketch{Key: uint64(id), Length: 6}}); err != nil {
			t.Fatal(err)
		}
	}
	got := tab.ForSubset(b)
	if len(got) != 4 {
		t.Fatalf("ForSubset returned %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Error("ForSubset not sorted by user id")
		}
	}
	if tab.CountForSubset(b) != 4 || !tab.HasSubset(b) {
		t.Error("CountForSubset/HasSubset wrong")
	}
	if tab.HasSubset(bitvec.MustSubset(9)) {
		t.Error("HasSubset true for unknown subset")
	}
	if tab.Len() != 4 {
		t.Errorf("Len = %d", tab.Len())
	}
	if tab.ForSubset(bitvec.MustSubset(9)) != nil {
		t.Error("ForSubset of unknown subset should be nil")
	}
}

func TestTableSubsetsAndUsersWithAll(t *testing.T) {
	tab := NewTable()
	b1 := bitvec.MustSubset(0)
	b2 := bitvec.MustSubset(1, 2)
	add := func(id bitvec.UserID, b bitvec.Subset) {
		t.Helper()
		if err := tab.Add(Published{ID: id, Subset: b, S: Sketch{Key: 1, Length: 4}}); err != nil {
			t.Fatal(err)
		}
	}
	add(1, b1)
	add(2, b1)
	add(3, b1)
	add(1, b2)
	add(3, b2)

	subs := tab.Subsets()
	if len(subs) != 2 {
		t.Fatalf("Subsets returned %d", len(subs))
	}
	ids := tab.UsersWithAll([]bitvec.Subset{b1, b2})
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("UsersWithAll = %v", ids)
	}
	if tab.UsersWithAll(nil) != nil {
		t.Error("UsersWithAll(nil) should be nil")
	}
	if tab.UsersWithAll([]bitvec.Subset{b1, bitvec.MustSubset(9)}) != nil {
		t.Error("UsersWithAll with an unknown subset should be nil")
	}

	per := tab.SketchesPerUser()
	if per[1] != 2 || per[2] != 1 || per[3] != 2 {
		t.Errorf("SketchesPerUser = %v", per)
	}
}

func TestTableAddAllStopsOnError(t *testing.T) {
	tab := NewTable()
	b := bitvec.MustSubset(0)
	batch := []Published{
		{ID: 1, Subset: b, S: Sketch{Key: 0, Length: 2}},
		{ID: 1, Subset: b, S: Sketch{Key: 1, Length: 2}}, // duplicate
		{ID: 2, Subset: b, S: Sketch{Key: 1, Length: 2}},
	}
	if err := tab.AddAll(batch); err == nil {
		t.Fatal("AddAll should fail on the duplicate")
	}
	if tab.Len() != 1 {
		t.Errorf("Len after failed AddAll = %d, want 1", tab.Len())
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tab := NewTable()
	b := bitvec.MustSubset(0, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := bitvec.UserID(g*1000 + i)
				_ = tab.Add(Published{ID: id, Subset: b, S: Sketch{Key: 2, Length: 4}})
				tab.Get(id, b)
				tab.CountForSubset(b)
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", tab.Len(), 8*200)
	}
}
