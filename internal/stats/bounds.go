package stats

import (
	"fmt"
	"math"
)

// This file carries the tail bounds the paper's analysis is written in.
//
// Lemma 4.1 states that the conjunctive-query estimator errs by more than ε
// with probability at most exp(−ε²(1−2p)²M/4); equivalently, with
// probability 1−δ the error is O(sqrt(log(1/δ)/M)).  These helpers turn the
// bound around in every direction the experiment harness needs: failure
// probability for a given (ε, p, M), error radius for a given (δ, p, M),
// and sample size for a given (ε, δ, p).

// HoeffdingTail returns the Hoeffding bound exp(-2 n t²) on the probability
// that the mean of n independent [0,1]-valued variables deviates from its
// expectation by more than t.
func HoeffdingTail(n int, t float64) float64 {
	if n <= 0 || t <= 0 {
		return 1
	}
	return math.Exp(-2 * float64(n) * t * t)
}

// ChernoffFailureProb is the paper's Lemma 4.1 failure bound: the
// probability that the sketch-based conjunctive query errs by more than eps
// when M users contribute and the bias parameter is p.
func ChernoffFailureProb(eps, p float64, m int) float64 {
	if eps <= 0 || m <= 0 {
		return 1
	}
	return math.Exp(-eps * eps * (1 - 2*p) * (1 - 2*p) * float64(m) / 4)
}

// ErrorRadius inverts ChernoffFailureProb: the additive error ε that holds
// with probability at least 1−δ for M users at bias p.  This is the paper's
// O(sqrt(log(1/δ)/M)) guarantee with its constants made explicit.
func ErrorRadius(delta, p float64, m int) float64 {
	if delta <= 0 || delta >= 1 || m <= 0 {
		return math.Inf(1)
	}
	if p >= 0.5 {
		return math.Inf(1)
	}
	return math.Sqrt(4*math.Log(1/delta)/float64(m)) / (1 - 2*p)
}

// RequiredUsers inverts ChernoffFailureProb in M: the number of users
// needed so that the error exceeds eps with probability at most delta.
func RequiredUsers(eps, delta, p float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || p >= 0.5 {
		return math.MaxInt32
	}
	m := 4 * math.Log(1/delta) / (eps * eps * (1 - 2*p) * (1 - 2*p))
	return int(math.Ceil(m))
}

// BinomialConfidence returns a (1-δ) two-sided Hoeffding confidence radius
// for an empirical frequency over n samples.
func BinomialConfidence(n int, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}

// Interval is a closed interval [Lo, Hi], used to report estimates with
// their confidence radii.
type Interval struct {
	Lo, Hi float64
}

// NewInterval returns the interval centered at mid with the given radius.
func NewInterval(mid, radius float64) Interval {
	return Interval{Lo: mid - radius, Hi: mid + radius}
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns the interval width.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Mid returns the interval midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Clamp returns the interval intersected with [lo, hi]; useful because
// frequency estimates live in [0,1].
func (iv Interval) Clamp(lo, hi float64) Interval {
	out := iv
	if out.Lo < lo {
		out.Lo = lo
	}
	if out.Hi > hi {
		out.Hi = hi
	}
	if out.Lo > out.Hi {
		out.Lo, out.Hi = out.Hi, out.Lo
	}
	return out
}

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi) }

// Clamp01 clips x to [0,1]; frequency estimators use it to keep reported
// fractions in range.
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
