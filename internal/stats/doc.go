// Package stats provides the statistics substrate shared by the estimators,
// the privacy auditor, the workload generators and the experiment harness:
//
//   - a small, fast, deterministic pseudorandom number generator
//     (xoshiro256** seeded through splitmix64) used for simulation
//     randomness — user coin flips, synthetic datasets, planted query
//     frequencies — so that every experiment is reproducible from a seed;
//   - running moments (Welford) and summary statistics;
//   - the Chernoff/Hoeffding tail bounds the paper's Lemma 4.1 and
//     Lemma 3.1 are stated in terms of, and the sample sizes / confidence
//     radii they imply;
//   - error metrics (MAE, RMSE, maximum absolute error) used to compare
//     estimated query answers against ground truth.
//
// Simulation randomness (this package) is deliberately separate from the
// public pseudorandom function H (package prf): the former models the
// users' private coin flips and the experimenter's workload choices, the
// latter is a public keyed object every party can evaluate.
package stats
