package stats

import (
	"fmt"
	"math"
)

// ErrorSummary aggregates the deviation between estimated and true values
// across a batch of queries.  The experiment harness prints one summary per
// parameter setting.
type ErrorSummary struct {
	n      int
	sumAbs float64
	sumSq  float64
	maxAbs float64
}

// Observe records one (estimate, truth) pair.
func (e *ErrorSummary) Observe(estimate, truth float64) {
	d := math.Abs(estimate - truth)
	e.n++
	e.sumAbs += d
	e.sumSq += d * d
	if d > e.maxAbs {
		e.maxAbs = d
	}
}

// N returns the number of recorded pairs.
func (e *ErrorSummary) N() int { return e.n }

// MAE returns the mean absolute error.
func (e *ErrorSummary) MAE() float64 {
	if e.n == 0 {
		return 0
	}
	return e.sumAbs / float64(e.n)
}

// RMSE returns the root-mean-square error.
func (e *ErrorSummary) RMSE() float64 {
	if e.n == 0 {
		return 0
	}
	return math.Sqrt(e.sumSq / float64(e.n))
}

// MaxAbs returns the largest absolute error observed.
func (e *ErrorSummary) MaxAbs() float64 { return e.maxAbs }

// Merge combines another summary into e.
func (e *ErrorSummary) Merge(o *ErrorSummary) {
	e.n += o.n
	e.sumAbs += o.sumAbs
	e.sumSq += o.sumSq
	if o.maxAbs > e.maxAbs {
		e.maxAbs = o.maxAbs
	}
}

// String implements fmt.Stringer.
func (e *ErrorSummary) String() string {
	return fmt.Sprintf("n=%d mae=%.5f rmse=%.5f max=%.5f", e.n, e.MAE(), e.RMSE(), e.MaxAbs())
}

// RelativeError returns |estimate-truth|/|truth|, or the absolute error when
// the truth is zero (so the metric stays finite for empty queries).
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		return math.Abs(estimate)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}
