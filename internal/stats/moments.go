package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates running mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add absorbs one observation.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the sample mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (0 when empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 when empty).
func (m *Moments) Max() float64 { return m.max }

// StdErr returns the standard error of the mean.
func (m *Moments) StdErr() float64 {
	if m.n == 0 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.n))
}

// String summarizes the accumulated statistics.
func (m *Moments) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g", m.n, m.Mean(), m.StdDev(), m.min, m.max)
}

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	delta := o.mean - m.mean
	mean := m.mean + delta*float64(o.n)/float64(n)
	m2 := m.m2 + o.m2 + delta*delta*float64(m.n)*float64(o.n)/float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n, m.mean, m.m2 = n, mean, m2
}

// Quantile returns the q-quantile (0 <= q <= 1) of the data using the
// nearest-rank method.  It panics on an empty slice or out-of-range q.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	cp := append([]float64(nil), data...)
	sort.Float64s(cp)
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Mean returns the arithmetic mean of data (0 for an empty slice).
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	var s float64
	for _, x := range data {
		s += x
	}
	return s / float64(len(data))
}
