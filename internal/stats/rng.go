package stats

import "math"

// RNG is a deterministic pseudorandom number generator (xoshiro256**)
// seeded through splitmix64.  It models the private coin flips of simulated
// users and the workload-generation randomness of the experiment harness.
// An RNG is not safe for concurrent use; create one per goroutine with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the four state words, as
	// recommended by the xoshiro authors.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// All-zero state is invalid for xoshiro; the splitmix expansion of any
	// seed cannot produce it, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next uniform 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (math.MaxUint64 / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Binomial returns the number of successes in n Bernoulli(p) trials.
// It is O(n); the simulators only use it for modest n.
func (r *RNG) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform.  Used by the SULQ-style output-perturbation comparator of
// Appendix A.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Zipf returns a value in [0,n) with probability proportional to
// 1/(rank+1)^s.  Used by the market-basket workload where item popularity
// is heavy-tailed.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	// Inverse-CDF over the precomputable normalizer would need caching; the
	// simple linear scan is adequate for the workload sizes used here.
	var norm float64
	for i := 1; i <= n; i++ {
		norm += 1 / math.Pow(float64(i), s)
	}
	target := r.Float64() * norm
	var cum float64
	for i := 1; i <= n; i++ {
		cum += 1 / math.Pow(float64(i), s)
		if cum >= target {
			return i - 1
		}
	}
	return n - 1
}

// Perm returns a uniform random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r, labelled by id.  The
// derived stream is a deterministic function of (r's current state, id), so
// parallel workers get reproducible, non-overlapping randomness.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d))
}
