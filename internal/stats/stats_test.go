package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministicPerSeed(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agreed on %d/100 draws", same)
	}
}

func TestRNGFloat64RangeAndMean(t *testing.T) {
	r := NewRNG(1)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/7) > 0.01 {
			t.Errorf("Intn(7) value %d has frequency %v", v, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBernoulliAndBinomial(t *testing.T) {
	r := NewRNG(3)
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
	var m Moments
	for i := 0; i < 2000; i++ {
		m.Add(float64(r.Binomial(50, 0.2)))
	}
	if math.Abs(m.Mean()-10) > 0.5 {
		t.Errorf("Binomial(50,0.2) mean = %v, want ~10", m.Mean())
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	var m Moments
	for i := 0; i < 50000; i++ {
		m.Add(r.NormFloat64())
	}
	if math.Abs(m.Mean()) > 0.03 {
		t.Errorf("normal mean = %v", m.Mean())
	}
	if math.Abs(m.StdDev()-1) > 0.03 {
		t.Errorf("normal sd = %v", m.StdDev())
	}
}

func TestZipfSkewed(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 20)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Zipf(20, 1.1)]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("Zipf not skewed: rank0=%d rank10=%d", counts[0], counts[10])
	}
	if counts[0] < 3*counts[19] {
		t.Errorf("Zipf tail too heavy: rank0=%d rank19=%d", counts[0], counts[19])
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(6)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	r := NewRNG(7)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams agreed on %d/100 draws", same)
	}
}

func TestMomentsKnownValues(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 || m.Mean() != 5 {
		t.Errorf("mean = %v n = %d", m.Mean(), m.N())
	}
	if math.Abs(m.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", m.Variance(), 32.0/7)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("min/max = %v/%v", m.Min(), m.Max())
	}
	if m.StdErr() <= 0 {
		t.Error("StdErr should be positive")
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	prop := func(xs []float64, split uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = float64(i)
			}
			// Keep magnitudes sane to avoid float blow-ups unrelated to the merge.
			xs[i] = math.Mod(xs[i], 1e6)
		}
		var whole Moments
		for _, x := range xs {
			whole.Add(x)
		}
		s := 0
		if len(xs) > 0 {
			s = int(split) % (len(xs) + 1)
		}
		var a, b Moments
		for _, x := range xs[:s] {
			a.Add(x)
		}
		for _, x := range xs[s:] {
			b.Add(x)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-whole.Mean()) < 1e-6 && math.Abs(a.Variance()-whole.Variance()) < 1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAndMean(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	if q := Quantile(data, 0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := Quantile(data, 1); q != 5 {
		t.Errorf("max quantile = %v, want 5", q)
	}
	if q := Quantile(data, 0); q != 1 {
		t.Errorf("min quantile = %v, want 1", q)
	}
	if m := Mean(data); m != 3 {
		t.Errorf("mean = %v, want 3", m)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestChernoffBoundsMonotone(t *testing.T) {
	// More users, larger epsilon or smaller p all shrink the failure bound.
	base := ChernoffFailureProb(0.01, 0.4, 100000)
	if ChernoffFailureProb(0.01, 0.4, 200000) >= base {
		t.Error("failure bound should shrink with more users")
	}
	if ChernoffFailureProb(0.02, 0.4, 100000) >= base {
		t.Error("failure bound should shrink with larger epsilon")
	}
	if ChernoffFailureProb(0.01, 0.3, 100000) >= base {
		t.Error("failure bound should shrink when p moves away from 1/2")
	}
	if ChernoffFailureProb(0, 0.4, 100000) != 1 {
		t.Error("degenerate epsilon should return the trivial bound 1")
	}
}

func TestErrorRadiusInvertsFailureProb(t *testing.T) {
	for _, m := range []int{1000, 10000, 100000} {
		for _, p := range []float64{0.3, 0.45} {
			delta := 0.05
			eps := ErrorRadius(delta, p, m)
			got := ChernoffFailureProb(eps, p, m)
			if math.Abs(got-delta) > 1e-9 {
				t.Errorf("m=%d p=%v: ChernoffFailureProb(ErrorRadius)=%v, want %v", m, p, got, delta)
			}
		}
	}
	if !math.IsInf(ErrorRadius(0.05, 0.5, 1000), 1) {
		t.Error("p=1/2 should give infinite radius (no utility)")
	}
}

func TestErrorRadiusScalesAsOneOverSqrtM(t *testing.T) {
	r1 := ErrorRadius(0.05, 0.4, 10000)
	r2 := ErrorRadius(0.05, 0.4, 40000)
	if math.Abs(r1/r2-2) > 1e-9 {
		t.Errorf("quadrupling M should halve the radius: %v vs %v", r1, r2)
	}
}

func TestRequiredUsersSatisfiesTarget(t *testing.T) {
	eps, delta, p := 0.01, 0.01, 0.4
	m := RequiredUsers(eps, delta, p)
	if ChernoffFailureProb(eps, p, m) > delta+1e-12 {
		t.Errorf("RequiredUsers=%d does not achieve failure prob <= %v", m, delta)
	}
	if m > 1 && ChernoffFailureProb(eps, p, m-1000) <= delta {
		t.Errorf("RequiredUsers=%d is far from tight", m)
	}
}

func TestHoeffdingTail(t *testing.T) {
	if HoeffdingTail(0, 0.1) != 1 || HoeffdingTail(100, 0) != 1 {
		t.Error("degenerate inputs should return 1")
	}
	if HoeffdingTail(1000, 0.1) >= HoeffdingTail(100, 0.1) {
		t.Error("tail should shrink with n")
	}
}

func TestIntervalOperations(t *testing.T) {
	iv := NewInterval(0.5, 0.1)
	if !iv.Contains(0.45) || iv.Contains(0.7) {
		t.Error("Contains wrong")
	}
	if math.Abs(iv.Width()-0.2) > 1e-12 || math.Abs(iv.Mid()-0.5) > 1e-12 {
		t.Error("Width/Mid wrong")
	}
	c := NewInterval(0.05, 0.2).Clamp(0, 1)
	if c.Lo != 0 || math.Abs(c.Hi-0.25) > 1e-12 {
		t.Errorf("Clamp = %v", c)
	}
	if Clamp01(-0.2) != 0 || Clamp01(1.5) != 1 || Clamp01(0.3) != 0.3 {
		t.Error("Clamp01 wrong")
	}
}

func TestErrorSummary(t *testing.T) {
	var e ErrorSummary
	e.Observe(0.5, 0.4)
	e.Observe(0.2, 0.4)
	if e.N() != 2 {
		t.Fatalf("N = %d", e.N())
	}
	if math.Abs(e.MAE()-0.15) > 1e-12 {
		t.Errorf("MAE = %v", e.MAE())
	}
	if math.Abs(e.MaxAbs()-0.2) > 1e-12 {
		t.Errorf("MaxAbs = %v", e.MaxAbs())
	}
	want := math.Sqrt((0.01 + 0.04) / 2)
	if math.Abs(e.RMSE()-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", e.RMSE(), want)
	}
	var other ErrorSummary
	other.Observe(1, 0)
	e.Merge(&other)
	if e.N() != 3 || e.MaxAbs() != 1 {
		t.Errorf("after Merge: n=%d max=%v", e.N(), e.MaxAbs())
	}
}

func TestRelativeError(t *testing.T) {
	if math.Abs(RelativeError(1.1, 1.0)-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v", RelativeError(1.1, 1.0))
	}
	if RelativeError(0.25, 0) != 0.25 {
		t.Error("zero truth should fall back to absolute error")
	}
}
