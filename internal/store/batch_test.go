package store

import (
	"errors"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

// TestAppendBatchDurableAndQueryable: one AppendBatch call spanning every
// shard lands with no failures, every record is immediately queryable
// (acknowledged means queryable), and the whole batch survives a reopen
// (acknowledged means durable).
func TestAppendBatchDurableAndQueryable(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 4, Fsync: true, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	b := bitvec.MustSubset(0, 3, 5)
	const n = 200
	batch := make([]sketch.Published, n)
	for i := range batch {
		batch[i] = testRecord(uint64(i+1), b)
	}
	failed, err := st.AppendBatch(batch)
	if err != nil || len(failed) != 0 {
		t.Fatalf("AppendBatch = (%v, %v), want no failures", failed, err)
	}
	for _, p := range batch {
		got, ok, err := st.Lookup(p.ID, b.Key())
		if err != nil || !ok || got.S != p.S {
			t.Fatalf("acknowledged record %d not queryable: %+v %v %v", p.ID, got, ok, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := indexRecords(t, collect(t, st2))
	if len(got) != n {
		t.Fatalf("reopen recovered %d records, want %d", len(got), n)
	}
	for _, p := range batch {
		if got[keyOf(p)] != p.S {
			t.Fatalf("record %d missing or corrupt after reopen", p.ID)
		}
	}
}

// TestAppendBatchEmptyAndClosed: an empty batch is a no-op, and a batch
// against a closed store reports EVERY index failed with ErrClosed —
// callers roll back precisely what the store says, so the failed list
// must be complete even when nothing was attempted.
func TestAppendBatchEmptyAndClosed(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 2, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if failed, err := st.AppendBatch(nil); err != nil || failed != nil {
		t.Fatalf("empty AppendBatch = (%v, %v), want (nil, nil)", failed, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	b := bitvec.MustSubset(0, 3)
	batch := []sketch.Published{testRecord(1, b), testRecord(2, b), testRecord(3, b)}
	failed, err := st.AppendBatch(batch)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("AppendBatch on a closed store = %v, want ErrClosed", err)
	}
	if len(failed) != len(batch) {
		t.Fatalf("closed AppendBatch failed %v, want all %d indices", failed, len(batch))
	}
	for i, f := range failed {
		if f != i {
			t.Fatalf("failed[%d] = %d, want %d (ascending, complete)", i, f, i)
		}
	}
}

// TestAppendBatchOversizeFailsOnlyItsShardGroup: a record too large for
// the WAL fails its whole per-shard group — atomicity is per shard, and
// the oversize check runs before the group joins a commit window so one
// bad record cannot fail an unrelated cohort — while the other shard's
// records land durably.  failed must list exactly the failed records in
// ascending input order, and the store must stay healthy for follow-up
// batches on every shard.
func TestAppendBatchOversizeFailsOnlyItsShardGroup(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 2, Fsync: true, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := bitvec.MustSubset(0, 3)
	// Encoded length 8+4+(8+8*2^17)+4+sketch > maxRecordSize (1 MiB).
	huge := bitvec.Range(0, 1<<17)

	// Pin two ids per shard so the batch provably spans both groups
	// (shard placement is a hash, so ids are found by search, not
	// arithmetic).
	var idsOn [2][]uint64
	for id := uint64(1); len(idsOn[0]) < 2 || len(idsOn[1]) < 2; id++ {
		s := userShard(bitvec.UserID(id), 2)
		if len(idsOn[s]) < 2 {
			idsOn[s] = append(idsOn[s], id)
		}
	}
	badGroup, goodGroup := idsOn[0], idsOn[1]
	batch := []sketch.Published{
		testRecord(goodGroup[0], b),   // healthy shard: must land
		testRecord(badGroup[0], huge), // oversize: fails its group
		testRecord(badGroup[1], b),    // same shard as the oversize: fails with it
		testRecord(goodGroup[1], b),   // healthy shard again: must land
	}
	wantFailed := []int{1, 2}
	failed, err := st.AppendBatch(batch)
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("AppendBatch with an oversize record = %v, want ErrRecordTooLarge", err)
	}
	if len(failed) != len(wantFailed) {
		t.Fatalf("failed = %v, want %v", failed, wantFailed)
	}
	for i := range wantFailed {
		if failed[i] != wantFailed[i] {
			t.Fatalf("failed = %v, want %v", failed, wantFailed)
		}
	}
	for _, i := range []int{0, 3} {
		p := batch[i]
		got, ok, err := st.Lookup(p.ID, b.Key())
		if err != nil || !ok || got.S != p.S {
			t.Fatalf("record %d on the healthy shard not durable: %+v %v %v", p.ID, got, ok, err)
		}
	}
	if _, ok, _ := st.Lookup(batch[2].ID, b.Key()); ok {
		t.Fatalf("record %d from the failed group became queryable", batch[2].ID)
	}
	// The failed shard is not poisoned: a clean follow-up batch to both
	// shards succeeds.
	retry := []sketch.Published{testRecord(badGroup[0]+1000, b), testRecord(goodGroup[0]+1000, b)}
	if failed, err := st.AppendBatch(retry); err != nil || len(failed) != 0 {
		t.Fatalf("follow-up AppendBatch = (%v, %v), want clean", failed, err)
	}
}
