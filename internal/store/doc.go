// Package store is the durable persistence layer under the collection
// engine.  The paper's central observation is that a published sketch is
// *permanently* public — a user discloses a few bits once and the analyst
// may query them forever — so the collector must never lose a sketch it has
// acknowledged.  This package provides exactly that guarantee.
//
// # Architecture
//
// The durable store shards records by hash(userID) % N.  Each shard owns
//
//   - a write-ahead log (wal.log): length-prefixed, CRC32-checksummed
//     records in arrival order, appended (and optionally fsynced) before
//     the publish is acknowledged; and
//   - immutable sorted segment files (seg-NNNNNNNN.seg): produced by
//     rolling a WAL that passed the flush threshold, written to a
//     temporary file, fsynced and atomically renamed into place.
//
// A background compaction loop merges a shard's segments once enough of
// them accumulate, deduplicating by (user, subset) and keeping the newest
// record.
//
// # Recovery
//
// Open loads every segment and replays every WAL.  A torn WAL tail — the
// partial record a crash mid-write leaves behind — is detected by the
// length/CRC framing and truncated away instead of failing the open, so a
// SIGKILLed collector restarts with exactly the set of fully-written
// sketches.  Segment files are written atomically and verified by
// checksum, so corruption there is reported as an error rather than
// silently dropped.
//
// Records reuse the internal/wire sketch encoding: the bytes on disk are
// the same public objects that travel on the wire, wrapped in the
// per-record framing above.
package store
