package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/obs"
	"sketchprivacy/internal/sketch"
)

// Defaults for Options fields left zero.
const (
	// DefaultShards is the default shard count for new data directories.
	DefaultShards = 8
	// DefaultFlushThreshold is the WAL size at which a shard rolls its
	// log into an immutable segment.
	DefaultFlushThreshold = 4 << 20
	// DefaultCompactThreshold is the segment count at which a shard is
	// compacted.
	DefaultCompactThreshold = 4
	// DefaultCompactInterval is how often the background loop checks
	// shards for compaction work.
	DefaultCompactInterval = 2 * time.Second
	// DefaultFsyncWindow is the default group-commit window: how long a
	// shard's committer waits for in-flight Appends to join an open
	// window before fsyncing it.  The window closes early the moment no
	// Append is mid-entry, so a lone writer never pays it.
	DefaultFsyncWindow = 2 * time.Millisecond
	// DefaultCommitBytes caps one commit window's framed bytes — the
	// size of the single write(2) a full window becomes.
	DefaultCommitBytes = 1 << 20
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configures a durable store.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Shards is the number of shards for a fresh directory (default
	// DefaultShards).  Reopening an existing directory always adopts the
	// shard count found on disk, since records are placed by
	// hash(userID) % shards.
	Shards int
	// Fsync, when true, fsyncs the WAL before any append is acknowledged,
	// extending the durability guarantee from process crashes to machine
	// crashes.  Appends are group-committed: concurrent Appends to a shard
	// share one write and one fsync (see FsyncWindow), so durable
	// throughput scales with writer concurrency instead of paying one
	// fsync per record.
	Fsync bool
	// FsyncWindow bounds how long a shard's group-commit leader waits for
	// straggling concurrent Appends to join an open commit window before
	// fsyncing it (default DefaultFsyncWindow; negative means zero — commit
	// the instant the cohort is complete).  The window always closes early
	// when no Append is in flight, so this is a latency ceiling for
	// stragglers, not a floor added to every append.  Only meaningful with
	// Fsync; without it appends need no batching to be fast.
	FsyncWindow time.Duration
	// CommitBytes caps the framed size of one commit window (default
	// DefaultCommitBytes); a full window commits immediately.
	CommitBytes int
	// FlushThreshold is the WAL size in bytes that triggers a roll into a
	// segment (default DefaultFlushThreshold).
	FlushThreshold int64
	// CompactThreshold is the per-shard segment count that triggers
	// compaction (default DefaultCompactThreshold).
	CompactThreshold int
	// CompactInterval is the background compaction poll period (default
	// DefaultCompactInterval).  Negative disables the background loop;
	// CompactNow still works.
	CompactInterval time.Duration
	// Metrics, when non-nil, registers the store's instruments (WAL
	// append/fsync latency histograms, roll/compaction counters, per-shard
	// size gauges) on the given registry.  Nil leaves the store entirely
	// uninstrumented at zero hot-path cost.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.FlushThreshold <= 0 {
		o.FlushThreshold = DefaultFlushThreshold
	}
	if o.CompactThreshold <= 0 {
		o.CompactThreshold = DefaultCompactThreshold
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = DefaultCompactInterval
	}
	if o.FsyncWindow == 0 {
		o.FsyncWindow = DefaultFsyncWindow
	} else if o.FsyncWindow < 0 {
		o.FsyncWindow = 0
	}
	if o.CommitBytes <= 0 {
		o.CommitBytes = DefaultCommitBytes
	}
	return o
}

// dshard is one shard: a WAL plus its immutable segments.
type dshard struct {
	mu      sync.Mutex
	id      int
	dir     string
	wal     *wal
	segs    []segmentMeta
	nextSeq uint64
	// compacting serializes compactions on the shard (background loop vs
	// CompactNow) so the merge can run without holding mu.
	compacting bool
	// rollFailedAt is the WAL size when the last inline roll failed
	// (0 = healthy).  Appends retry the roll only after another flush
	// threshold of growth, so a stuck segment directory costs one failed
	// attempt per threshold instead of one per append.
	rollFailedAt int64
	// closed is set (under mu) at the start of Close, so an Append that
	// raced past the store-level check still fails with ErrClosed before
	// touching the WAL — and everything the close-time Flush syncs is
	// everything that was ever acknowledged.
	closed bool
	// flushThreshold is Options.FlushThreshold, copied per shard so the
	// group-commit leader can roll without reaching back into the store.
	flushThreshold int64
	// gc, when non-nil (Options.Fsync), is the shard's group-commit
	// pipeline: Appends park on it and a single leader pays one fsync for
	// the whole window.  See groupcommit.go.
	gc *groupCommit
	// m, when non-nil, records roll/compaction activity; see metrics.go.
	m *metrics
}

// Durable is the sharded on-disk Store.
type Durable struct {
	opts   Options
	lock   *dirLock
	shards []*dshard
	// replayTime is how long Open spent replaying WALs and validating
	// segments, exposed as the store_replay_seconds gauge.
	replayTime time.Duration

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// Open opens (creating if necessary) a durable store in opts.Dir,
// replaying every shard's WAL — truncating torn tails — and validating
// every segment.  The returned store is ready for Append and Iterate.
func Open(opts Options) (*Durable, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	nShards, err := readManifest(opts.Dir)
	if err != nil {
		lock.Unlock()
		return nil, err
	}
	found, err := existingShards(opts.Dir)
	if err != nil {
		lock.Unlock()
		return nil, err
	}
	if nShards == 0 {
		// No manifest: adopt any shard directories already present (a
		// pre-manifest or hand-built layout), else take opts.Shards, and
		// persist the count before creating a single shard directory —
		// a crash mid-creation must not shrink N on the next open, since
		// records are placed by hash % N.
		nShards = found
		if nShards == 0 {
			nShards = opts.Shards
		}
		if err := writeManifest(opts.Dir, nShards, opts.Fsync); err != nil {
			lock.Unlock()
			return nil, err
		}
	}
	if found > nShards {
		lock.Unlock()
		return nil, fmt.Errorf("store: %s holds %d shard directories but its manifest says %d: refusing to open a mixed data directory", opts.Dir, found, nShards)
	}
	d := &Durable{opts: opts, lock: lock, done: make(chan struct{})}
	var m *metrics
	if opts.Metrics != nil {
		m = newMetrics(opts.Metrics)
	}
	replayStart := time.Now()
	// Shards touch disjoint directories, so replay and segment validation
	// parallelize perfectly — cold starts are bounded by the largest
	// shard, not the sum.
	d.shards = make([]*dshard, nShards)
	openErrs := make([]error, nShards)
	var openWG sync.WaitGroup
	for i := 0; i < nShards; i++ {
		openWG.Add(1)
		go func(i int) {
			defer openWG.Done()
			d.shards[i], openErrs[i] = openShard(opts, i, m)
		}(i)
	}
	openWG.Wait()
	for _, err := range openErrs {
		if err != nil {
			d.closeShards()
			lock.Unlock()
			return nil, err
		}
	}
	d.replayTime = time.Since(replayStart)
	if opts.Metrics != nil {
		d.registerCollectors(opts.Metrics)
	}
	if opts.Fsync {
		// Make freshly-created shard directories durable before the first
		// append is acknowledged.
		if err := syncDir(opts.Dir); err != nil {
			d.closeShards()
			lock.Unlock()
			return nil, err
		}
	}
	if opts.CompactInterval > 0 {
		d.wg.Add(1)
		go d.compactLoop()
	}
	return d, nil
}

// manifestName is the file in the data directory root recording the
// shard count, written before any shard directory is created.
const manifestName = "SHARDS"

// readManifest returns the shard count recorded in dir, 0 when no
// manifest exists yet.
func readManifest(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("store: corrupt shard manifest in %s: %q", dir, data)
	}
	return n, nil
}

// writeManifest atomically records the shard count in dir.  Like
// writeSegment, the temp file is fsynced before the rename so a power
// loss cannot leave a renamed-but-empty manifest that would make every
// later open fail.
func writeManifest(dir string, n int, fsync bool) error {
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(strconv.Itoa(n) + "\n")); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if fsync {
		return syncDir(dir)
	}
	return nil
}

// existingShards counts the shard directories already present in dir,
// failing loudly unless the set is exactly shard-0000..shard-(n-1):
// records are placed by hash % n, so opening a directory with a gap
// (say, a partial restore that lost one shard) would silently drop the
// shards above the gap and re-place new records under a smaller
// modulus.
func existingShards(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var idx []int
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			if i, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "shard-")); err == nil {
				idx = append(idx, i)
			}
		}
	}
	sort.Ints(idx)
	for i, v := range idx {
		if v != i {
			return 0, fmt.Errorf("store: %s is missing shard directory shard-%04d (found shard-%04d): refusing to open a partial data directory", dir, i, v)
		}
	}
	return len(idx), nil
}

// shardDirName renders the canonical directory name for shard i.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// openShard opens shard i: lists and validates its segments, replays its
// WAL and positions the log for appending.
func openShard(opts Options, i int, m *metrics) (*dshard, error) {
	dir := filepath.Join(opts.Dir, shardDirName(i))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	nextSeq := uint64(1)
	for si := range segs {
		n, version, idx, body, err := openSegment(segs[si].path)
		if err != nil {
			return nil, err
		}
		// Decode eagerly: this verifies every per-frame checksum — the
		// integrity wall for v2 record bytes, since the outer whole-file
		// sum is not checked on open — so a corrupt segment fails Open
		// loudly, and it feeds the first shard load without a second
		// disk pass.
		loaded, err := decodeSegmentRecords(version, uint32(n), body, segs[si].path)
		if err != nil {
			return nil, err
		}
		segs[si].records = n
		segs[si].version = version
		segs[si].idx = idx
		segs[si].loaded = loaded
		if segs[si].seq >= nextSeq {
			nextSeq = segs[si].seq + 1
		}
	}
	walPath := filepath.Join(dir, "wal.log")
	records, size, err := replayWAL(walPath)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(walPath, size, records, opts.Fsync, m)
	if err != nil {
		return nil, err
	}
	if opts.Fsync {
		// Machine-crash durability needs the wal.log (and shard directory)
		// directory entries on disk too, not just the record bytes.
		if err := w.Sync(); err != nil {
			w.Close()
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			w.Close()
			return nil, err
		}
	}
	sh := &dshard{id: i, dir: dir, wal: w, segs: segs, nextSeq: nextSeq, flushThreshold: opts.FlushThreshold, m: m}
	if opts.Fsync {
		sh.gc = newGroupCommit(sh, opts.FsyncWindow, opts.CommitBytes)
	}
	return sh, nil
}

// FNV-1a 64-bit constants, inlined so the per-append hash is
// allocation-free.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// userShard places a user by hash(userID) % shards.
func userShard(id bitvec.UserID, shards int) int {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return int(h % uint64(shards))
}

// shardOf places a record by its user id.
func (d *Durable) shardOf(p sketch.Published) *dshard {
	return d.shards[userShard(p.ID, len(d.shards))]
}

// Append implements Store: the record is framed, CRC'd and written to its
// shard's WAL before Append returns.  In fsync mode the append parks on
// the shard's group-commit window and returns only after the window's
// shared fsync — acknowledged still means durable.  A WAL past the flush
// threshold is rolled into a segment inline.
func (d *Durable) Append(p sketch.Published) error {
	sh := d.shardOf(p)
	if sh.gc != nil {
		return sh.gc.submit([]sketch.Published{p})
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	if err := sh.wal.Append(p); err != nil {
		return err
	}
	sh.maybeRollLocked()
	return nil
}

// appendGroup lands one shard's slice of an AppendBatch: through the
// commit window in fsync mode (one park and one shared fsync for the
// whole group), or directly into the WAL otherwise.  All-or-nothing per
// group, like wal.AppendBatch itself.
func (sh *dshard) appendGroup(ps []sketch.Published) error {
	if sh.gc != nil {
		return sh.gc.submit(ps)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	if err := sh.wal.AppendBatch(ps); err != nil {
		return err
	}
	sh.maybeRollLocked()
	return nil
}

// AppendBatch implements BatchAppender: it partitions ps by shard and
// lands each shard's records as ONE commit-window entry, so a client
// batch costs roughly one fsync — and one scheduler park — per touched
// shard instead of one per record.  Durability on success matches
// Append: when a record's index is absent from failed, it survives a
// crash.
//
// Atomicity is per shard, not per call: each shard group is
// all-or-nothing (a failed write truncates the whole group off that
// shard's log), but other shards' groups may already be durable and are
// NOT undone — fsynced records cannot be taken back without breaking
// replay.  failed reports exactly the records that did not become
// durable, in ascending input order, so callers roll back precisely
// those and nothing else.
func (d *Durable) AppendBatch(ps []sketch.Published) (failed []int, err error) {
	if len(ps) == 0 {
		return nil, nil
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return seqIndices(len(ps)), ErrClosed
	}
	groups := make([][]sketch.Published, len(d.shards))
	idxs := make([][]int, len(d.shards))
	for i, p := range ps {
		s := userShard(p.ID, len(d.shards))
		groups[s] = append(groups[s], p)
		idxs[s] = append(idxs[s], i)
	}
	errs := make([]error, len(d.shards))
	var wg sync.WaitGroup
	for s := range groups {
		if len(groups[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = d.shards[s].appendGroup(groups[s])
		}(s)
	}
	wg.Wait()
	errAt := -1
	for s, serr := range errs {
		if serr == nil {
			continue
		}
		failed = append(failed, idxs[s]...)
		if errAt < 0 || idxs[s][0] < errAt {
			errAt, err = idxs[s][0], serr
		}
	}
	sort.Ints(failed)
	return failed, err
}

// seqIndices returns [0, 1, ..., n-1].
func seqIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// maybeRollLocked rolls the WAL into a segment once it crosses the flush
// threshold, backing off after a failed roll.  The shard lock must be
// held.  A failed roll is a maintenance problem, not an append failure:
// the records are already durable in the WAL, and surfacing the error to
// the appender would make the engine NACK and roll back records the log
// would resurrect on replay.  Log the transition into the failing state,
// back off until the WAL grows by another threshold, and let Flush/Close
// surface persistent errors.
func (sh *dshard) maybeRollLocked() {
	if sh.wal.size >= sh.flushThreshold &&
		(sh.rollFailedAt == 0 || sh.wal.size >= sh.rollFailedAt+sh.flushThreshold) {
		if err := sh.rollLocked(); err != nil {
			if sh.rollFailedAt == 0 {
				log.Printf("store: shard %d wal roll failed (records stay in the wal; will retry): %v", sh.id, err)
			}
			sh.rollFailedAt = sh.wal.size
		} else {
			sh.rollFailedAt = 0
		}
	}
}

// rollLocked flushes the shard's WAL into a fresh segment and truncates
// the log.  The records come from the WAL's in-memory mirror, so no
// disk re-read happens under the shard lock.  The shard lock must be
// held.  Crash safety: the segment is durable (fsync + rename + dir
// sync) before the WAL is truncated, so a crash in between leaves the
// records present twice and deduplication drops the copy.
func (sh *dshard) rollLocked() error {
	if len(sh.wal.pending) == 0 {
		return nil
	}
	records := normalize(sh.wal.pending)
	meta, err := writeSegment(sh.dir, sh.nextSeq, records)
	if err != nil {
		return fmt.Errorf("store: shard %d roll: %w", sh.id, err)
	}
	sh.nextSeq++
	sh.segs = append(sh.segs, meta)
	if err := sh.wal.Truncate(); err != nil {
		return fmt.Errorf("store: shard %d truncating rolled wal: %w", sh.id, err)
	}
	if sh.m != nil {
		sh.m.rolls.Inc()
	}
	return nil
}

// loadShardLocked returns a shard's full deduplicated contents as a
// k-way merge of its sources, oldest first so the newest duplicate wins:
// segments are written in canonical order, so the merge is linear
// instead of the former sort over the concatenation.  The WAL part comes
// from the in-memory mirror, which holds exactly the acknowledged
// records — a NACKed-but-written record never appears here.  The shard
// lock must be held.
func (sh *dshard) loadShardLocked() ([]sketch.Published, error) {
	sources := make([][]sketch.Published, 0, len(sh.segs)+1)
	for si := range sh.segs {
		seg := &sh.segs[si]
		var records []sketch.Published
		var err error
		if seg.loaded != nil {
			// First load since open: the records were decoded (and
			// per-frame checksummed) by openShard, so hand them over and
			// free the cache.  Later loads (and segments rolled after
			// open) take the disk path below.
			records, seg.loaded = seg.loaded, nil
		} else {
			records, err = readSegment(seg.path)
		}
		if err != nil {
			return nil, err
		}
		sources = append(sources, records)
	}
	sources = append(sources, normalize(sh.wal.pending))
	return mergeSorted(sources), nil
}

// Lookup returns the newest record for one (user, subset) pair, seeking
// through the WAL mirror and then each segment newest-first — bloom
// filters skip segments without the user, the sparse index turns the
// rest into one-stride reads — instead of materialising the shard.  A
// segment compacted away mid-lookup triggers a retry against the fresh
// segment list.
func (d *Durable) Lookup(id bitvec.UserID, subset string) (sketch.Published, bool, error) {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return sketch.Published{}, false, ErrClosed
	}
	key := recordKey{id: id, subset: subset}
	sh := d.shards[userShard(id, len(d.shards))]
	for attempt := 0; ; attempt++ {
		sh.mu.Lock()
		// Newest wins: the WAL is newer than any segment, and within it
		// the latest append wins, so scan the mirror backwards.  The id
		// check goes first so the subset key — whose encoding allocates —
		// is only materialised for the scanned user's own records.
		for i := len(sh.wal.pending) - 1; i >= 0; i-- {
			if p := sh.wal.pending[i]; p.ID == id && p.Subset.Key() == subset {
				sh.mu.Unlock()
				return p, true, nil
			}
		}
		segs := append([]segmentMeta(nil), sh.segs...)
		sh.mu.Unlock()
		// Segments newest-first: a roll always outranks prior segments,
		// and a compaction's merged output is itself newest-wins, so the
		// first hit is the newest record.
		p, ok, err := lookupSegments(segs, sh.m, key)
		if err != nil && os.IsNotExist(err) && attempt < 3 {
			// Compacted away between the snapshot and the read; the fresh
			// segment list has the survivor.
			continue
		}
		return p, ok, err
	}
}

// lookupSegments probes segs newest-first for key.
func lookupSegments(segs []segmentMeta, m *metrics, key recordKey) (sketch.Published, bool, error) {
	for i := len(segs) - 1; i >= 0; i-- {
		p, ok, err := lookupSegment(segs[i], m, key)
		if err != nil || ok {
			return p, ok, err
		}
	}
	return sketch.Published{}, false, nil
}

// Iterate implements Store: shards are visited in order, each yielding
// its deduplicated records in canonical (subset, user) order.
func (d *Durable) Iterate(fn func(p sketch.Published) error) error {
	for _, sh := range d.shards {
		sh.mu.Lock()
		records, err := sh.loadShardLocked()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
		for _, p := range records {
			if err := fn(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush implements Store: every shard's WAL is fsynced, and WALs past the
// flush threshold are rolled into segments.  Every shard is attempted
// even after a failure — Flush is the durability half of graceful
// shutdown, and one shard's bad disk must not leave the healthy shards
// unsynced — with the first error reported.
func (d *Durable) Flush() error {
	var first error
	for _, sh := range d.shards {
		sh.mu.Lock()
		err := sh.wal.Sync()
		if err == nil && sh.wal.size >= d.opts.FlushThreshold {
			err = sh.rollLocked()
			if err == nil {
				sh.rollFailedAt = 0
			}
		}
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CompactNow merges the segments of every shard holding at least min of
// them; min is clamped to 2, since merging fewer than two segments is
// never productive (a lone segment is already deduplicated — rolls and
// compactions always write normalized records).  It is the synchronous
// form of the background loop, for tests and operators.  The run is
// registered with the store's waitgroup so Close waits for an in-flight
// merge instead of releasing the directory lock while segment files are
// still being written and deleted.
func (d *Durable) CompactNow(min int) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.wg.Add(1)
	d.mu.Unlock()
	defer d.wg.Done()
	for _, sh := range d.shards {
		if err := sh.compact(min); err != nil {
			return err
		}
	}
	return nil
}

// compact merges the shard's current segments into one when it has at
// least min of them, deduplicating by (user, subset) with the newest
// record winning.  The WAL is untouched: it is always newer than any
// segment, so queries and iteration still resolve correctly.
//
// The merge itself runs without the shard lock so appends are never
// stalled behind multi-MiB reads and fsyncs: segments are immutable,
// rolls only append to sh.segs, and the compacting flag keeps a second
// compaction off the shard, so the snapshot taken under the lock stays
// valid for the whole merge.  Segments rolled meanwhile carry higher
// sequence numbers than the merged one, so the rebuilt list (and a
// reopened directory, which sorts by sequence) keeps oldest-first order.
func (sh *dshard) compact(min int) error {
	if min < 2 {
		min = 2
	}
	sh.mu.Lock()
	if sh.closed || sh.compacting || len(sh.segs) < min {
		sh.mu.Unlock()
		return nil
	}
	sh.compacting = true
	snap := append([]segmentMeta(nil), sh.segs...)
	seq := sh.nextSeq
	sh.nextSeq++
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		sh.compacting = false
		sh.mu.Unlock()
	}()

	start := now(sh.m)
	sources := make([][]sketch.Published, 0, len(snap))
	for _, seg := range snap {
		records, err := readSegment(seg.path)
		if err != nil {
			return fmt.Errorf("store: shard %d compact: %w", sh.id, err)
		}
		sources = append(sources, records)
	}
	// Segments are individually sorted and deduplicated, so the merge is
	// a linear k-way pass, newest (highest-seq) source winning ties.
	all := mergeSorted(sources)
	meta, err := writeSegment(sh.dir, seq, all)
	if err != nil {
		return fmt.Errorf("store: shard %d compact: %w", sh.id, err)
	}
	if sh.m != nil {
		sh.m.compactions.Inc()
		sh.m.compactLatency.ObserveSince(start)
	}
	sh.mu.Lock()
	sh.segs = append([]segmentMeta{meta}, sh.segs[len(snap):]...)
	sh.mu.Unlock()
	for _, seg := range snap {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("store: shard %d removing compacted segment: %w", sh.id, err)
		}
	}
	return nil
}

// compactLoop is the background compaction goroutine.
func (d *Durable) compactLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.opts.CompactInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			// Best effort: an IO error here will resurface on the next
			// Append/Flush against the same shard.
			_ = d.CompactNow(d.opts.CompactThreshold)
		}
	}
}

// Close implements Store: stops compaction, flushes every WAL and closes
// the log files.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	// Fence appends first: once every shard is marked closed, the Flush
	// below covers every record any Append ever acknowledged.  Draining
	// the group-commit pipelines after the fence commits every window an
	// in-flight Append already joined — accepted work resolves, it is
	// never abandoned — and happens before Flush so those records are in
	// its durability net too.
	for _, sh := range d.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
		if sh.gc != nil {
			sh.gc.close()
		}
	}
	close(d.done)
	d.wg.Wait()
	err := d.Flush()
	if cerr := d.closeShards(); err == nil {
		err = cerr
	}
	if uerr := d.lock.Unlock(); err == nil {
		err = uerr
	}
	return err
}

func (d *Durable) closeShards() error {
	var err error
	for _, sh := range d.shards {
		if sh == nil {
			continue // a shard that failed a parallel open
		}
		if sh.gc != nil {
			// Idempotent: Close already drained it; the failed-open path
			// has not, and must not leak the committer goroutine.
			sh.gc.close()
		}
		sh.mu.Lock()
		if cerr := sh.wal.Close(); err == nil {
			err = cerr
		}
		sh.mu.Unlock()
	}
	return err
}

// Stats implements Store.
func (d *Durable) Stats() Stats {
	st := Stats{Dir: d.opts.Dir}
	for _, sh := range d.shards {
		sh.mu.Lock()
		s := ShardStats{
			Shard:      sh.id,
			WALBytes:   sh.wal.size,
			WALRecords: sh.wal.records,
			Segments:   len(sh.segs),
		}
		for _, seg := range sh.segs {
			s.SegmentBytes += seg.bytes
			s.SegmentRecords += seg.records
		}
		sh.mu.Unlock()
		st.Shards = append(st.Shards, s)
		st.Records += s.WALRecords + s.SegmentRecords
	}
	// st.Shards is in index order by construction: Open builds d.shards
	// strictly as shard 0..n-1.
	return st
}
