package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// testRecord fabricates a valid published sketch for user id over subset b.
func testRecord(id uint64, b bitvec.Subset) sketch.Published {
	return sketch.Published{
		ID:     bitvec.UserID(id),
		Subset: b,
		S:      sketch.Sketch{Key: id % 1024, Length: 10},
	}
}

// collect drains a store's Iterate into a slice.
func collect(t *testing.T, st Store) []sketch.Published {
	t.Helper()
	var out []sketch.Published
	if err := st.Iterate(func(p sketch.Published) error {
		out = append(out, p)
		return nil
	}); err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	return out
}

// indexRecords maps (user, subset) to the stored sketch, failing on dups.
func indexRecords(t *testing.T, ps []sketch.Published) map[recordKey]sketch.Sketch {
	t.Helper()
	out := make(map[recordKey]sketch.Sketch, len(ps))
	for _, p := range ps {
		k := keyOf(p)
		if _, dup := out[k]; dup {
			t.Fatalf("duplicate record for user %d subset %v after dedup", p.ID, p.Subset)
		}
		out[k] = p.S
	}
	return out
}

func TestDurableAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 4, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	b := bitvec.MustSubset(0, 2, 4)
	const n = 500
	for i := uint64(1); i <= n; i++ {
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if got := collect(t, st); len(got) != n {
		t.Fatalf("Iterate before close returned %d records, want %d", len(got), n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(st2.shards) != 4 {
		t.Fatalf("reopen found %d shards, want 4 (adopted from disk)", len(st2.shards))
	}
	got := indexRecords(t, collect(t, st2))
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	for i := uint64(1); i <= n; i++ {
		want := testRecord(i, b)
		s, ok := got[keyOf(want)]
		if !ok {
			t.Fatalf("user %d missing after reopen", i)
		}
		if s != want.S {
			t.Fatalf("user %d sketch %v, want %v", i, s, want.S)
		}
	}
	if stats := st2.Stats(); stats.Records != n {
		t.Fatalf("Stats.Records = %d, want %d", stats.Records, n)
	}
}

func TestDurableRollsWALIntoSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every few appends roll into a segment.
	st, err := Open(Options{Dir: dir, Shards: 2, FlushThreshold: 256, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := bitvec.MustSubset(1, 3)
	const n = 200
	for i := uint64(1); i <= n; i++ {
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Segments() == 0 {
		t.Fatalf("expected segments after %d appends past a 256-byte threshold, got none (stats %+v)", n, stats)
	}
	if len(collect(t, st)) != n {
		t.Fatalf("records lost across WAL rolls")
	}
}

func TestDurableCompactionMergesAndDedups(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, FlushThreshold: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := bitvec.MustSubset(0)
	// FlushThreshold 1: every append creates its own segment, including
	// three generations of user 7's record.
	for i := uint64(1); i <= 10; i++ {
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	newest := sketch.Published{ID: 7, Subset: b, S: sketch.Sketch{Key: 3, Length: 10}}
	for _, s := range []sketch.Sketch{{Key: 1, Length: 10}, {Key: 2, Length: 10}, newest.S} {
		if err := st.Append(sketch.Published{ID: 7, Subset: b, S: s}); err != nil {
			t.Fatal(err)
		}
	}
	before := st.Stats()
	if before.Segments() < 13 {
		t.Fatalf("setup expected one segment per append, got %d", before.Segments())
	}
	if err := st.CompactNow(2); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.Segments() != 1 {
		t.Fatalf("compaction left %d segments, want 1", after.Segments())
	}
	got := indexRecords(t, collect(t, st))
	if len(got) != 10 {
		t.Fatalf("compacted store has %d unique records, want 10", len(got))
	}
	if s := got[keyOf(newest)]; s != newest.S {
		t.Fatalf("compaction kept sketch %v for user 7, want newest %v", s, newest.S)
	}

	// Compacted state must survive a reopen.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got2 := indexRecords(t, collect(t, st2))
	if len(got2) != 10 || got2[keyOf(newest)] != newest.S {
		t.Fatalf("compacted state corrupted by reopen: %d records", len(got2))
	}
}

func TestDurableWALNewerThanSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, FlushThreshold: 1 << 20, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := bitvec.MustSubset(0)
	old := sketch.Published{ID: 1, Subset: b, S: sketch.Sketch{Key: 11, Length: 10}}
	if err := st.Append(old); err != nil {
		t.Fatal(err)
	}
	// Force the old record into a segment, then append a newer one that
	// stays in the WAL.
	st.shards[0].mu.Lock()
	err = st.shards[0].rollLocked()
	st.shards[0].mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	newer := sketch.Published{ID: 1, Subset: b, S: sketch.Sketch{Key: 22, Length: 10}}
	if err := st.Append(newer); err != nil {
		t.Fatal(err)
	}
	got := collect(t, st)
	if len(got) != 1 || got[0].S != newer.S {
		t.Fatalf("WAL record must shadow segment record, got %+v", got)
	}
}

func TestDurableCrashBetweenSegmentAndTruncate(t *testing.T) {
	// A crash after a segment lands but before the WAL truncates leaves
	// the same records in both; recovery must deduplicate them.
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	b := bitvec.MustSubset(0, 1)
	for i := uint64(1); i <= 20; i++ {
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: write the segment by hand, leave wal.log alone.
	sh := st.shards[0]
	records, _, err := replayWAL(sh.wal.path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeSegment(sh.dir, sh.nextSeq, records); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := indexRecords(t, collect(t, st2))
	if len(got) != 20 {
		t.Fatalf("recovered %d unique records, want 20", len(got))
	}
}

func TestDurableLeftoverTmpSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	b := bitvec.MustSubset(2)
	if err := st.Append(testRecord(1, b)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-flush leaves a partial .tmp file behind.
	tmp := filepath.Join(dir, "shard-0000", segmentName(99)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := collect(t, st2); len(got) != 1 {
		t.Fatalf("recovered %d records, want 1", len(got))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp segment not cleaned up: %v", err)
	}
}

// TestDurableCorruptSegmentFailsOpen pins the layered v2 integrity
// contract: corruption in a record frame fails Open loudly (the eager
// decode verifies every per-frame checksum), while corruption in the
// advisory index/footer region degrades reads to the linear path —
// still returning the exact records — instead of bricking the store.
func TestDurableCorruptSegmentFailsOpen(t *testing.T) {
	setup := func(t *testing.T) string {
		dir := t.TempDir()
		st, err := Open(Options{Dir: dir, Shards: 1, FlushThreshold: 1, CompactInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Append(testRecord(1, bitvec.MustSubset(0))); err != nil {
			t.Fatal(err)
		}
		stats := st.Stats()
		if stats.Segments() != 1 {
			t.Fatalf("setup wanted 1 segment, got %d", stats.Segments())
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	corrupt := func(t *testing.T, dir string, at func(data []byte) int) {
		seg := filepath.Join(dir, "shard-0000", segmentName(1))
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[at(data)] ^= 0xFF
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("record frame", func(t *testing.T) {
		dir := setup(t)
		// First payload byte of the first record frame.
		corrupt(t, dir, func([]byte) int { return segV2HeaderSize + segV2FrameHdr })
		if _, err := Open(Options{Dir: dir, CompactInterval: -1}); err == nil {
			t.Fatal("Open must fail on a segment with a corrupt record frame")
		}
	})
	t.Run("index footer", func(t *testing.T) {
		dir := setup(t)
		// A byte of the footer's inner checksum: the index is advisory,
		// so the open degrades to index-free reads rather than failing.
		corrupt(t, dir, func(data []byte) int { return len(data) - 16 })
		st, err := Open(Options{Dir: dir, CompactInterval: -1})
		if err != nil {
			t.Fatalf("index corruption must degrade, not fail open: %v", err)
		}
		defer st.Close()
		var got []sketch.Published
		if err := st.Iterate(func(p sketch.Published) error {
			got = append(got, p)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := testRecord(1, bitvec.MustSubset(0))
		if len(got) != 1 || got[0].ID != want.ID || got[0].S != want.S || !got[0].Subset.Equal(want.Subset) {
			t.Fatalf("degraded read returned %+v, want %+v", got, want)
		}
	})
}

func TestDurableDirLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, CompactInterval: -1}); err == nil {
		t.Fatal("second Open on a live data directory must fail, or two processes would corrupt each other's WALs")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableCompactionDuringAppends(t *testing.T) {
	// Compaction merges outside the shard lock; appends (and the segments
	// they roll) that land mid-merge must survive the segment swap.
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, FlushThreshold: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := bitvec.MustSubset(0, 1)
	const n = 200
	done := make(chan error, 1)
	go func() {
		for i := uint64(1); i <= n; i++ {
			if err := st.Append(testRecord(i, b)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := st.CompactNow(2); err != nil {
				t.Fatal(err)
			}
			got := indexRecords(t, collect(t, st))
			if len(got) != n {
				t.Fatalf("after compaction under appends: %d unique records, want %d", len(got), n)
			}
			return
		default:
			if err := st.CompactNow(2); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestWALRepairAfterUnrecoverableWrite(t *testing.T) {
	// A broken WAL (failed write whose rollback also failed) self-heals on
	// the next append: everything past the acknowledged prefix is cut —
	// torn bytes AND a fully-written record whose fsync failed, which the
	// engine NACKed and must not resurrect — and service resumes.
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := bitvec.MustSubset(0, 2)
	for i := uint64(1); i <= 3; i++ {
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the failure aftermath: a CRC-valid record that was NACKed
	// (fsync failed after the write) followed by torn bytes, broken set.
	w := st.shards[0].wal
	payload := wire.AppendPublished(nil, testRecord(99, b))
	var hdr [walHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.f.Write([]byte{0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	w.broken = true
	if err := st.Append(testRecord(4, b)); err != nil {
		t.Fatalf("append after repairable breakage: %v", err)
	}
	if w.broken {
		t.Fatal("wal still marked broken after successful repair")
	}
	got := indexRecords(t, collect(t, st))
	if len(got) != 4 {
		t.Fatalf("store has %d unique records after repair, want 4", len(got))
	}
	if _, resurrected := got[keyOf(testRecord(99, b))]; resurrected {
		t.Fatal("NACKed record resurrected by repair")
	}
	// The on-disk log must agree: repair physically cut the NACKed record
	// and the torn bytes, so a restart cannot resurrect them either.
	onDisk, _, err := replayWAL(w.path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 4 {
		t.Fatalf("on-disk wal has %d records after repair, want 4", len(onDisk))
	}
	for _, p := range onDisk {
		if p.ID == 99 {
			t.Fatal("NACKed record still on disk after repair")
		}
	}
}

func TestDurableShardGapFailsOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 4, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A partial restore that lost one shard must fail loudly: silently
	// adopting 3 shards would re-place records under a smaller modulus
	// and never replay the shards above the gap.
	if err := os.RemoveAll(filepath.Join(dir, "shard-0002")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, CompactInterval: -1}); err == nil {
		t.Fatal("Open must refuse a data directory with a shard gap")
	}
}

func TestDurableManifestHealsCrashMidCreation(t *testing.T) {
	// A crash during the first Open can leave only a prefix of the shard
	// directories; the manifest (written before any of them) pins N so
	// the store cannot silently shrink to the prefix.
	dir := t.TempDir()
	if err := writeManifest(dir, 4, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := os.MkdirAll(filepath.Join(dir, shardDirName(i)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Open(Options{Dir: dir, Shards: 8, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(st.shards) != 4 {
		t.Fatalf("opened %d shards, want the manifest's 4 (not the 2 on disk or the flag's 8)", len(st.shards))
	}
}

func TestDurableManifestMismatchFailsOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 4, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// More shard directories than the manifest records means the manifest
	// and the data disagree — refuse rather than guess the modulus.
	if err := writeManifest(dir, 2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, CompactInterval: -1}); err == nil {
		t.Fatal("Open must refuse a directory whose shard count exceeds its manifest")
	}
}

func TestDurableRollFailureBacksOffAndRecovers(t *testing.T) {
	// A shard whose segment writes fail must keep acknowledging appends
	// (the WAL has them), retry the roll only after another threshold of
	// growth, and roll normally once the blockage clears.
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 1, FlushThreshold: 64, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh := st.shards[0]
	// Block segment writes: a directory where the temp file would go.
	block := filepath.Join(sh.dir, segmentName(1)+".tmp")
	if err := os.MkdirAll(block, 0o755); err != nil {
		t.Fatal(err)
	}
	b := bitvec.MustSubset(0)
	for i := uint64(1); i <= 40; i++ {
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatalf("Append(%d) during roll blockage: %v", i, err)
		}
	}
	if sh.rollFailedAt == 0 {
		t.Fatal("roll failure not recorded for backoff")
	}
	if st.Stats().Segments() != 0 {
		t.Fatal("segment appeared despite the blocked temp path")
	}
	if got := collect(t, st); len(got) != 40 {
		t.Fatalf("blocked shard serves %d records, want 40", len(got))
	}
	if err := os.RemoveAll(block); err != nil {
		t.Fatal(err)
	}
	for i := uint64(41); i <= 120; i++ {
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Segments() == 0 {
		t.Fatal("roll never retried after the blockage cleared")
	}
	if got := collect(t, st); len(got) != 120 {
		t.Fatalf("recovered shard serves %d records, want 120", len(got))
	}
}

func TestSegmentHostileCountRejected(t *testing.T) {
	// A crafted segment declaring 2^32-1 records (checksum recomputed)
	// must produce a decode error, not a huge preallocation.
	dir := t.TempDir()
	meta, err := writeSegment(dir, 1, []sketch.Published{testRecord(1, bitvec.MustSubset(0))})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(meta.path)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(data[8:], 0xFFFFFFFF)
	binary.BigEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	if err := os.WriteFile(meta.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSegment(meta.path); err == nil {
		t.Fatal("segment with a hostile record count must fail to decode")
	}
}

func TestDurableClosedAppend(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir(), CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testRecord(1, bitvec.MustSubset(0))); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

func TestMemStoreSemanticsMatchDurable(t *testing.T) {
	b := bitvec.MustSubset(0, 1)
	m := NewMem()
	for i := uint64(1); i <= 5; i++ {
		if err := m.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	newer := sketch.Published{ID: 3, Subset: b, S: sketch.Sketch{Key: 999, Length: 10}}
	if err := m.Append(newer); err != nil {
		t.Fatal(err)
	}
	got := indexRecords(t, collect(t, m))
	if len(got) != 5 {
		t.Fatalf("mem store has %d unique records, want 5", len(got))
	}
	if got[keyOf(newer)] != newer.S {
		t.Fatalf("mem store did not keep the newest record")
	}
	if st := m.Stats(); st.Records != 5 {
		t.Fatalf("mem Stats.Records = %d, want 5", st.Records)
	}
}
