package store

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// Group commit: with Options.Fsync set, every production WAL's trick for
// durable ingest at ingest-pipeline speeds.  Concurrent Appends to a shard
// park on a commit window; a single committer goroutine (the leader)
// drains the window, writes every framed record in one write(2), pays ONE
// fsync for the whole cohort and wakes everyone with the shared outcome.
// Acknowledged still means durable — no Append returns before its record's
// fsync — but the fsync cost is amortized over the window, so durable
// throughput scales with the number of concurrent writers instead of being
// pinned at one fsync per record.
//
// A window closes at the earliest of:
//
//   - cohort completion: no Append is in flight (entered the store but not
//     yet queued).  This is the common close: a lone writer commits
//     immediately with no added latency, and N parked writers commit as one
//     batch the moment the previous commit's fsync returns — the window IS
//     the in-flight commit, à la LevelDB's writer queue.
//   - the size cap (Options.CommitBytes): bounds one write's memory and
//     the blast radius of a torn batch.
//   - the window deadline (Options.FsyncWindow, measured from the first
//     queued record): bounds how long a descheduled straggler can hold the
//     cohort's latency hostage.
//
// Failure keeps the PR-2 NACK invariants: a failed write or fsync rolls
// the WHOLE batch off the log (wal.AppendBatch truncates to the pre-batch
// size) and every parked Append returns the error, so each engine caller
// rolls its own record back out of the table and nothing non-durable stays
// queryable or can resurrect on replay.
type groupCommit struct {
	sh      *dshard
	window  time.Duration
	maxByte int

	// entering counts Appends between store entry and enqueue — the
	// stragglers the committer gives a beat to join the open window.
	entering atomic.Int32

	mu    sync.Mutex
	queue []commitWaiter
	bytes int
	// windowStart is when the oldest queued record arrived; the window
	// deadline is measured from it.
	windowStart time.Time
	closed      bool

	// arrived is poked (non-blocking, cap 1) on every enqueue so the
	// committer re-evaluates its close conditions event-driven, never by
	// polling.
	arrived chan struct{}
	closing chan struct{}
	wg      sync.WaitGroup

	// flat is the committer-owned scratch the queued groups are flattened
	// into each commit, reused across windows.
	flat []sketch.Published
}

// commitWaiter is one parked appender: its records — one for a plain
// Append, a whole per-shard group for an AppendBatch — and the channel
// the committer delivers the batch outcome on.  A multi-record waiter
// costs one park and one wake regardless of its size, which is what
// lets batched ingest amortize the scheduler alongside the fsync.
type commitWaiter struct {
	ps   []sketch.Published
	errc chan error
}

func newGroupCommit(sh *dshard, window time.Duration, maxBytes int) *groupCommit {
	gc := &groupCommit{
		sh:      sh,
		window:  window,
		maxByte: maxBytes,
		arrived: make(chan struct{}, 1),
		closing: make(chan struct{}),
	}
	gc.wg.Add(1)
	go gc.run()
	return gc
}

// submit parks the caller on the shard's open commit window and returns
// the batch outcome: nil only after every submitted record's write — and
// in fsync mode its fsync — succeeded.  ps joins the window as one
// all-or-nothing group.
func (gc *groupCommit) submit(ps []sketch.Published) error {
	frameBytes := 0
	for _, p := range ps {
		if n := wire.PublishedEncodedLen(p); n > maxRecordSize {
			// Refused before joining a window: one oversized record must
			// not fail its whole cohort.
			return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, n)
		}
		frameBytes += walFrameLen(p)
	}
	gc.entering.Add(1)
	w := commitWaiter{ps: ps, errc: make(chan error, 1)}
	gc.mu.Lock()
	if gc.closed {
		gc.mu.Unlock()
		gc.entering.Add(-1)
		return ErrClosed
	}
	if len(gc.queue) == 0 {
		gc.windowStart = time.Now()
	}
	gc.queue = append(gc.queue, w)
	gc.bytes += frameBytes
	gc.mu.Unlock()
	// Decrement before poking: the committer woken by this poke must see
	// this record queued, not counted as a straggler it should wait for.
	gc.entering.Add(-1)
	poke(gc.arrived)
	return <-w.errc
}

// poke delivers a non-blocking wakeup on a capacity-1 channel.
func poke(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// run is the committer: it sleeps until a window opens, waits for the
// cohort to complete (bounded by the window deadline and the size cap)
// and commits the batch.  On close it drains and commits everything still
// queued — in-flight Appends resolve, they are never abandoned.
func (gc *groupCommit) run() {
	defer gc.wg.Done()
	for {
		gc.mu.Lock()
		n, bytes, closed, start := len(gc.queue), gc.bytes, gc.closed, gc.windowStart
		gc.mu.Unlock()
		if n == 0 {
			if closed {
				return
			}
			select {
			case <-gc.arrived:
			case <-gc.closing:
			}
			continue
		}
		if !closed && bytes < gc.maxByte && gc.entering.Load() > 0 {
			// Stragglers are mid-Append; give them until the window
			// deadline to join, re-evaluating on every enqueue.
			if wait := gc.window - time.Since(start); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-gc.arrived:
				case <-t.C:
				case <-gc.closing:
				}
				t.Stop()
				continue
			}
		}
		gc.commit()
	}
}

// commit drains the open window and appends it to the WAL as one batch,
// rolling the log into a segment when it crossed the flush threshold, then
// wakes the cohort with the shared outcome.
func (gc *groupCommit) commit() {
	gc.mu.Lock()
	batch := gc.queue
	gc.queue = nil
	gc.bytes = 0
	gc.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	ps := gc.flat[:0]
	for _, w := range batch {
		ps = append(ps, w.ps...)
	}
	gc.flat = ps // keep the grown buffer; AppendBatch copies, never retains
	sh := gc.sh
	start := now(sh.m)
	sh.mu.Lock()
	// No sh.closed check: Close drains the committer before closing the
	// log files, and a queued record belongs to an Append that was
	// accepted before the close fence — it must resolve, not leak.
	err := sh.wal.AppendBatch(ps)
	if err == nil {
		if sh.m != nil {
			sh.m.commitLatency.ObserveSince(start)
			sh.m.commitRecords.Observe(time.Duration(len(ps)) * time.Second)
			sh.m.commits.Inc()
		}
		sh.maybeRollLocked()
	}
	sh.mu.Unlock()
	for _, w := range batch {
		w.errc <- err
	}
	// Yield so the writers just woken re-enter Append and join the next
	// window before it is drained.  Without this, on a loaded scheduler the
	// committer can loop around and commit a 1-record straggler batch
	// between every full cohort, doubling the fsync count.
	runtime.Gosched()
}

// close fences new submissions, lets the committer drain every queued
// record and waits for it to exit.
func (gc *groupCommit) close() {
	gc.mu.Lock()
	already := gc.closed
	gc.closed = true
	gc.mu.Unlock()
	if !already {
		close(gc.closing)
	}
	gc.wg.Wait()
}
