//go:build !unix

package store

// dirLock is a no-op on platforms without flock; single-process use per
// data directory is then the operator's responsibility.
type dirLock struct{}

func lockDir(dir string) (*dirLock, error) { return &dirLock{}, nil }

func (l *dirLock) Unlock() error { return nil }
