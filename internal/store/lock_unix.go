//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// dirLock holds an exclusive advisory lock on a data directory.  Two
// processes sharing one directory would append to the same WALs, race
// their rolls onto identical segment names and truncate each other's
// acknowledged records — flock makes the second Open fail fast instead.
// The kernel releases the lock when the process dies, so a SIGKILLed
// daemon never leaves a stale lock behind.
type dirLock struct {
	f *os.File
}

// lockDir takes the exclusive lock on dir's LOCK file without blocking.
func lockDir(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data directory %s is in use by another process: %w", dir, err)
	}
	return &dirLock{f: f}, nil
}

// Unlock releases the lock.  Closing the descriptor drops the flock.
func (l *dirLock) Unlock() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
