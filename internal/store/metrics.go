package store

import (
	"time"

	"sketchprivacy/internal/obs"
)

// metrics holds the store's hot-path instruments.  A nil *metrics (no
// registry in Options) disables instrumentation entirely: the WAL and
// compaction paths pay one nil check and skip the time.Now calls, so an
// uninstrumented store runs exactly as before.
type metrics struct {
	appendLatency  *obs.Histogram
	fsyncLatency   *obs.Histogram
	rolls          *obs.Counter
	compactions    *obs.Counter
	compactLatency *obs.Histogram
	// Group-commit instruments: one observation per committed window.
	commits       *obs.Counter
	commitLatency *obs.Histogram
	// commitRecords abuses the duration histogram as a size histogram:
	// windows observe 1s per record, so bucket bounds and the rendered
	// sum read directly as record counts.
	commitRecords *obs.Histogram
	// Indexed-segment instruments: seeks answered by the sparse index,
	// reads that fell back to a linear scan (v1 segments or a failed
	// index parse), and point lookups a bloom filter skipped entirely.
	indexSeeks     *obs.Counter
	indexFallbacks *obs.Counter
	bloomSkips     *obs.Counter
}

// commitRecordBuckets are the store_commit_records bounds: powers of two
// from 1 to 1024 records (encoded as seconds, see metrics.commitRecords).
var commitRecordBuckets = func() []time.Duration {
	var b []time.Duration
	for n := 1; n <= 1024; n *= 2 {
		b = append(b, time.Duration(n)*time.Second)
	}
	return b
}()

// newMetrics registers the store's instrument families on reg.
func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		appendLatency:  reg.Histogram("store_wal_append_seconds", "Latency of one WAL record append (write syscall, excluding fsync).", nil),
		fsyncLatency:   reg.Histogram("store_wal_fsync_seconds", "Latency of the per-append WAL fsync (only recorded when Options.Fsync is on).", nil),
		rolls:          reg.Counter("store_wal_rolls_total", "WAL-to-segment rolls completed."),
		compactions:    reg.Counter("store_compactions_total", "Segment compaction merges completed."),
		compactLatency: reg.Histogram("store_compaction_seconds", "Duration of one shard's segment compaction merge.", nil),
		commits:        reg.Counter("store_commits_total", "Group-commit windows committed (each is one WAL write and, in fsync mode, one fsync)."),
		commitLatency:  reg.Histogram("store_commit_seconds", "Latency of one group-commit window's WAL write+fsync.", nil),
		commitRecords:  reg.Histogram("store_commit_records", "Records per committed group-commit window (bounds are record counts, not seconds).", commitRecordBuckets),
		indexSeeks:     reg.Counter("store_segment_index_seeks_total", "Segment reads answered through the sparse key index (seek instead of full scan)."),
		indexFallbacks: reg.Counter("store_segment_index_fallbacks_total", "Segment reads that fell back to a linear scan (v1 segment or unusable index)."),
		bloomSkips:     reg.Counter("store_segment_bloom_skips_total", "Point lookups skipped entirely by a segment's per-user bloom filter."),
	}
}

// registerCollectors wires the render-time gauges: per-shard WAL and
// segment sizes (bytes, records, segment count) read from Stats on each
// scrape, plus the startup replay duration.  Collectors take shard locks
// only at scrape time, never on the append path.
func (d *Durable) registerCollectors(reg *obs.Registry) {
	emitPerShard := func(pick func(ShardStats) float64) func(emit func(v float64, labels ...obs.Label)) {
		return func(emit func(v float64, labels ...obs.Label)) {
			for _, s := range d.Stats().Shards {
				emit(pick(s), obs.L("shard", shardDirName(s.Shard)))
			}
		}
	}
	reg.CollectFunc("store_wal_bytes", "Current WAL size per shard in bytes.", obs.TypeGauge,
		emitPerShard(func(s ShardStats) float64 { return float64(s.WALBytes) }))
	reg.CollectFunc("store_wal_records", "Acknowledged records currently in each shard's WAL.", obs.TypeGauge,
		emitPerShard(func(s ShardStats) float64 { return float64(s.WALRecords) }))
	reg.CollectFunc("store_segments", "Immutable segments per shard.", obs.TypeGauge,
		emitPerShard(func(s ShardStats) float64 { return float64(s.Segments) }))
	reg.CollectFunc("store_segment_bytes", "Total segment bytes per shard.", obs.TypeGauge,
		emitPerShard(func(s ShardStats) float64 { return float64(s.SegmentBytes) }))
	reg.CollectFunc("store_segment_records", "Total segment records per shard.", obs.TypeGauge,
		emitPerShard(func(s ShardStats) float64 { return float64(s.SegmentRecords) }))
	reg.GaugeFunc("store_replay_seconds", "Wall time the last Open spent replaying WALs and validating segments.",
		func() float64 { return d.replayTime.Seconds() })
}

// now is time.Now behind the nil gate: instrumentation sites call it only
// when a metrics struct is installed.
func now(m *metrics) time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}
