package store

import (
	"fmt"
	"os"

	"sketchprivacy/internal/sketch"
)

// BatchReader is implemented by stores that can stream their contents in
// bounded batches without materialising a whole shard in memory.  The
// cluster rebalance engine reads a node's records through it: the node
// serves each read from at most one segment file (or the WAL mirror), so
// streaming a multi-gigabyte shard never loads more than one segment at a
// time.
//
// The cursor is opaque: pass zero to start a stream and the returned next
// cursor thereafter.  The stream is stateless on the store side, so it
// tolerates concurrent appends, rolls and compactions with a one-sided
// guarantee: a record present when the stream started is returned at least
// once (possibly more than once if a roll or compaction moved it), and a
// record appended after the stream started may or may not appear.
// Consumers must therefore be idempotent — the transfer path is, via the
// engine's identical-republish ingestion.
type BatchReader interface {
	// ReadBatch returns up to max records starting at cursor, the cursor
	// for the next call, and whether the stream is exhausted.
	ReadBatch(cursor uint64, max int) (records []sketch.Published, next uint64, done bool, err error)
}

// ReadBatch implements BatchReader for the in-memory store.  The cursor is
// an index into the first-append order, which only grows (overwrites
// replace values in place), so the no-skip guarantee is trivial.
func (m *Mem) ReadBatch(cursor uint64, max int) ([]sketch.Published, uint64, bool, error) {
	if max <= 0 {
		max = defaultBatchMax
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cursor >= uint64(len(m.order)) {
		return nil, cursor, true, nil
	}
	end := cursor + uint64(max)
	if end > uint64(len(m.order)) {
		end = uint64(len(m.order))
	}
	out := make([]sketch.Published, 0, end-cursor)
	for _, k := range m.order[cursor:end] {
		out = append(out, m.records[k])
	}
	return out, end, end == uint64(len(m.order)), nil
}

// defaultBatchMax is the record count used when a caller passes max <= 0.
const defaultBatchMax = 2048

// The durable store's cursor packs a position into 64 bits:
//
//	[16 bits shard][2 bits phase][23 bits segment seq][23 bits offset]
//
// Per shard the WAL mirror streams first, then the segments in ascending
// sequence order.  That order is what makes the stream skip-free under
// concurrency: a roll moves WAL records into a segment with a sequence
// higher than any existing one (still unread, because segments come after
// the WAL), and a compaction merges segments into one with a higher
// sequence than all of its inputs (so records from an unread input are
// re-encountered, never lost).  Both events can cause re-reads, which the
// idempotent consumer absorbs.
const (
	curPhaseWAL  = 0 // streaming the WAL mirror at offset
	curPhaseSeek = 1 // finding the smallest segment seq greater than seq
	curPhaseSeg  = 2 // streaming segment seq at offset

	curSeqBits = 23
	curOffBits = 23
	curSeqMax  = 1<<curSeqBits - 1
	curOffMax  = 1<<curOffBits - 1
)

type batchCursor struct {
	shard int
	phase uint64
	seq   uint64
	off   uint64
}

func packCursor(c batchCursor) uint64 {
	return uint64(c.shard)<<48 | c.phase<<46 | c.seq<<curOffBits | c.off
}

func unpackCursor(v uint64) batchCursor {
	return batchCursor{
		shard: int(v >> 48),
		phase: v >> 46 & 3,
		seq:   v >> curOffBits & curSeqMax,
		off:   v & curOffMax,
	}
}

// ReadBatch implements BatchReader for the durable store.  Each call reads
// from at most one segment file; the shard lock is held only to snapshot
// the WAL mirror or the segment list, never across file IO.
func (d *Durable) ReadBatch(cursor uint64, max int) ([]sketch.Published, uint64, bool, error) {
	if max <= 0 {
		max = defaultBatchMax
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, cursor, false, ErrClosed
	}
	c := unpackCursor(cursor)
	var out []sketch.Published
	for len(out) < max && c.shard < len(d.shards) {
		sh := d.shards[c.shard]
		switch c.phase {
		case curPhaseWAL:
			sh.mu.Lock()
			pending := sh.wal.pending
			if c.off >= uint64(len(pending)) {
				// WAL exhausted (or truncated by a roll — the rolled
				// records reappear in a not-yet-read segment).
				c.phase, c.seq, c.off = curPhaseSeek, 0, 0
				sh.mu.Unlock()
				continue
			}
			take := min(max-len(out), len(pending)-int(c.off))
			out = append(out, pending[c.off:int(c.off)+take]...)
			c.off += uint64(take)
			sh.mu.Unlock()
		case curPhaseSeek:
			sh.mu.Lock()
			var next segmentMeta
			found := false
			for _, seg := range sh.segs {
				if seg.seq > c.seq && (!found || seg.seq < next.seq) {
					next, found = seg, true
				}
			}
			sh.mu.Unlock()
			if !found {
				c = batchCursor{shard: c.shard + 1}
				continue
			}
			if next.seq > curSeqMax {
				return nil, 0, false, fmt.Errorf("store: shard %d segment seq %d exceeds the streaming cursor range", sh.id, next.seq)
			}
			c.phase, c.seq, c.off = curPhaseSeg, next.seq, 0
		case curPhaseSeg:
			sh.mu.Lock()
			var meta segmentMeta
			found := false
			for _, seg := range sh.segs {
				if seg.seq == c.seq {
					meta, found = seg, true
					break
				}
			}
			sh.mu.Unlock()
			if !found {
				// Compacted away mid-stream; its records live in a
				// higher-seq segment now.
				c.phase = curPhaseSeek
				continue
			}
			if meta.records > curOffMax {
				return nil, 0, false, fmt.Errorf("store: shard %d segment %d holds %d records, exceeding the streaming cursor range", sh.id, c.seq, meta.records)
			}
			if c.off >= meta.records {
				c.phase = curPhaseSeek
				continue
			}
			// An indexed segment serves just the cursor's slice via a
			// seek; a v1 segment falls back to the full read inside.
			records, err := readSegmentRange(meta, sh.m, int(c.off), max-len(out))
			if err != nil {
				if os.IsNotExist(err) {
					// Compacted away between the lookup and the read; its
					// records live in a higher-seq segment now.
					c.phase = curPhaseSeek
					continue
				}
				return nil, cursor, false, err
			}
			out = append(out, records...)
			c.off += uint64(len(records))
			if c.off >= meta.records {
				c.phase = curPhaseSeek
			}
		}
	}
	return out, packCursor(c), c.shard >= len(d.shards), nil
}
