package store

import (
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

// batchRecord fabricates a distinct valid record per id.
func batchRecord(id uint64) sketch.Published {
	return sketch.Published{
		ID:     bitvec.UserID(id),
		Subset: bitvec.MustSubset(0, 2),
		S:      sketch.Sketch{Key: id % 512, Length: 10},
	}
}

// drainBatches streams a BatchReader to exhaustion with a small batch size.
func drainBatches(t *testing.T, br BatchReader, max int) []sketch.Published {
	t.Helper()
	var out []sketch.Published
	cursor := uint64(0)
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("batch stream did not terminate")
		}
		records, next, done, err := br.ReadBatch(cursor, max)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, records...)
		if done {
			return out
		}
		if next == cursor && len(records) == 0 {
			t.Fatalf("stream stalled at cursor %d", cursor)
		}
		cursor = next
	}
}

// coverage returns the distinct (user, subset) keys in a record stream.
func coverage(records []sketch.Published) map[recordKey]sketch.Published {
	out := make(map[recordKey]sketch.Published, len(records))
	for _, p := range records {
		out[keyOf(p)] = p
	}
	return out
}

func TestMemReadBatchCoversEverything(t *testing.T) {
	m := NewMem()
	const n = 1000
	for i := uint64(1); i <= n; i++ {
		if err := m.Append(batchRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := coverage(drainBatches(t, m, 77))
	if len(got) != n {
		t.Fatalf("stream covered %d distinct records, want %d", len(got), n)
	}
}

func TestDurableReadBatchCoversSegmentsAndWAL(t *testing.T) {
	d, err := Open(Options{
		Dir:             t.TempDir(),
		Shards:          4,
		FlushThreshold:  4 << 10, // force frequent rolls into segments
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 3000
	for i := uint64(1); i <= n; i++ {
		if err := d.Append(batchRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Segments() == 0 {
		t.Fatal("test store rolled no segments; threshold too large")
	}
	streamed := coverage(drainBatches(t, d, 256))
	if len(streamed) != n {
		t.Fatalf("stream covered %d distinct records, want %d", len(streamed), n)
	}
	// The stream agrees with Iterate record for record.
	if err := d.Iterate(func(p sketch.Published) error {
		got, ok := streamed[keyOf(p)]
		if !ok {
			t.Fatalf("record %v missing from the stream", p.ID)
		}
		if got.S != p.S {
			t.Fatalf("record %v streamed as %v, Iterate holds %v", p.ID, got.S, p.S)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableReadBatchSurvivesConcurrentRollAndCompact is the no-skip
// property under the events that move records mid-stream: a roll
// (WAL → segment) and a compaction (segments → one segment) between
// batches must never hide a pre-existing record from the stream.
func TestDurableReadBatchSurvivesConcurrentRollAndCompact(t *testing.T) {
	d, err := Open(Options{
		Dir:             t.TempDir(),
		Shards:          2,
		FlushThreshold:  2 << 10,
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		if err := d.Append(batchRecord(i)); err != nil {
			t.Fatal(err)
		}
	}

	var out []sketch.Published
	cursor := uint64(0)
	step := 0
	for {
		records, next, done, err := d.ReadBatch(cursor, 100)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, records...)
		if done {
			break
		}
		cursor = next
		step++
		switch step {
		case 3:
			// Roll every WAL into segments mid-stream.
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			for _, sh := range d.shards {
				sh.mu.Lock()
				err := sh.rollLocked()
				sh.mu.Unlock()
				if err != nil {
					t.Fatal(err)
				}
			}
		case 6:
			// Merge all segments mid-stream.
			if err := d.CompactNow(2); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := coverage(out)
	if len(got) != n {
		t.Fatalf("stream covered %d distinct records under roll+compact, want %d", len(got), n)
	}
	if len(out) < n {
		t.Fatalf("stream returned %d records total, want at least %d", len(out), n)
	}
}
