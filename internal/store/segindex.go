package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// Indexed segment format (version 2).  A v2 segment carries enough
// structure to answer point lookups and range reads with a seek instead
// of a full-file scan:
//
//	8  bytes magic "SKSEG\x00\x00\x02"
//	4  bytes big-endian record count
//	frames: per record, 4-byte big-endian payload length + 4-byte
//	        big-endian CRC32 (IEEE) of the payload + wire payload,
//	        in canonical (subset key, user id) order
//	index section (at indexOff):
//	  2 bytes stride N (every Nth record is indexed)
//	  4 bytes entry count (== ceil(count/N))
//	  entries: 8-byte frame offset + 8-byte user id + 2-byte subset-key
//	           length + subset key, entry i describing record i*N
//	  4 bytes bloom length + 1 byte bloom hash count + bloom bytes
//	           (per-user bloom filter over every record's user id)
//	16 byte footer:
//	  4 bytes CRC32 of the index section
//	  8 bytes indexOff
//	  4 bytes CRC32 of everything above (the whole-file checksum)
//
// The index is advisory: every consistency check on it — the inner CRC,
// monotonic in-range offsets, the entry-key spot check after a seek —
// falls back to the linear frame walk on failure, which depends only on
// the header count and the per-record CRCs.  A reader can therefore be
// wrong about nothing: a corrupt index costs a scan, never a wrong
// record.
const (
	// segIndexStride is every-Nth-record sparse index granularity: a seek
	// over-reads at most stride-1 records (a few KiB) to reach its target.
	segIndexStride = 16
	// segBloomBitsPerRecord and segBloomK size the per-user bloom filter
	// (~10 bits/record, 6 probes ≈ 1% false positives).
	segBloomBitsPerRecord = 10
	segBloomK             = 6

	segV2HeaderSize = 12 // magic + record count
	segV2FooterSize = 16 // inner CRC + indexOff + outer CRC
	segV2FrameHdr   = 8  // per-record length + CRC
)

// segIndex is one v2 segment's parsed footer index, kept in memory for
// the segment's lifetime (a few hundred KiB per 4 MiB segment).
type segIndex struct {
	count     uint32
	framesEnd uint64 // offset one past the last frame == indexOff
	stride    int
	entries   []segIndexEntry
	bloom     []byte
	bloomK    int
}

// segIndexEntry locates record ordinal i*stride: its frame offset and its
// key, the latter re-checked after every seek so a lying offset degrades
// to a fallback scan instead of misattributed records.
type segIndexEntry struct {
	off    uint64
	user   bitvec.UserID
	subset string
}

// keyLess orders record keys canonically: subset key first, user id
// second — the order normalize sorts into and segments are written in.
func keyLess(a, b recordKey) bool {
	if a.subset != b.subset {
		return a.subset < b.subset
	}
	return a.id < b.id
}

// splitmix64 is the bloom filter's mixer: cheap, well-distributed, and
// stable across processes (the filter is persisted).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// bloomAdd sets user's k bits via double hashing (h1 + i*h2).
func bloomAdd(bloom []byte, k int, user uint64) {
	bits := uint64(len(bloom)) * 8
	h1 := splitmix64(user)
	h2 := splitmix64(user ^ 0x5bf03635)
	for i := 0; i < k; i++ {
		bit := (h1 + uint64(i)*h2) % bits
		bloom[bit/8] |= 1 << (bit % 8)
	}
}

// bloomTest reports whether user may be present; false is definitive.
func bloomTest(bloom []byte, k int, user uint64) bool {
	if len(bloom) == 0 || k <= 0 {
		return true // no filter: cannot exclude anyone
	}
	bits := uint64(len(bloom)) * 8
	h1 := splitmix64(user)
	h2 := splitmix64(user ^ 0x5bf03635)
	for i := 0; i < k; i++ {
		bit := (h1 + uint64(i)*h2) % bits
		if bloom[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// encodeSegmentV2 renders records (already in canonical order) as a full
// v2 segment image and the in-memory index that describes it, so a
// fresh roll or compaction never re-parses its own output.
func encodeSegmentV2(records []sketch.Published) ([]byte, *segIndex) {
	idx := &segIndex{count: uint32(len(records)), stride: segIndexStride, bloomK: segBloomK}
	bloomBits := len(records) * segBloomBitsPerRecord
	if bloomBits < 64 {
		bloomBits = 64
	}
	idx.bloom = make([]byte, (bloomBits+7)/8)

	buf := make([]byte, 0, segV2HeaderSize+len(records)*56)
	buf = append(buf, segMagicV2[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(records)))
	for i, p := range records {
		if i%segIndexStride == 0 {
			idx.entries = append(idx.entries, segIndexEntry{
				off:    uint64(len(buf)),
				user:   p.ID,
				subset: p.Subset.Key(),
			})
		}
		bloomAdd(idx.bloom, segBloomK, uint64(p.ID))
		hdr := len(buf)
		buf = append(buf, zeroHeader[:]...)
		buf = wire.AppendPublished(buf, p)
		payload := buf[hdr+segV2FrameHdr:]
		binary.BigEndian.PutUint32(buf[hdr:], uint32(len(payload)))
		binary.BigEndian.PutUint32(buf[hdr+4:], crc32.ChecksumIEEE(payload))
	}
	indexOff := uint64(len(buf))
	idx.framesEnd = indexOff

	section := make([]byte, 0, 6+len(idx.entries)*32+5+len(idx.bloom))
	section = binary.BigEndian.AppendUint16(section, uint16(segIndexStride))
	section = binary.BigEndian.AppendUint32(section, uint32(len(idx.entries)))
	for _, e := range idx.entries {
		section = binary.BigEndian.AppendUint64(section, e.off)
		section = binary.BigEndian.AppendUint64(section, uint64(e.user))
		section = binary.BigEndian.AppendUint16(section, uint16(len(e.subset)))
		section = append(section, e.subset...)
	}
	section = binary.BigEndian.AppendUint32(section, uint32(len(idx.bloom)))
	section = append(section, byte(segBloomK))
	section = append(section, idx.bloom...)

	buf = append(buf, section...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(section))
	buf = binary.BigEndian.AppendUint64(buf, indexOff)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, idx
}

// parseSegIndex extracts the index of a v2 segment image that already
// passed the whole-file checksum.  Every length, offset and count is
// treated as hostile 64-bit input: any violation returns an error, and
// callers degrade to the index-free linear path.
func parseSegIndex(data []byte, count uint32, path string) (*segIndex, error) {
	n := uint64(len(data))
	if n < segV2HeaderSize+segV2FooterSize {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrSegmentCorrupt, path, n)
	}
	innerCRC := binary.BigEndian.Uint32(data[n-16:])
	indexOff := binary.BigEndian.Uint64(data[n-12:])
	if indexOff < segV2HeaderSize || indexOff > n-segV2FooterSize {
		return nil, fmt.Errorf("%w: %s index offset %d out of range", ErrSegmentCorrupt, path, indexOff)
	}
	section := data[indexOff : n-segV2FooterSize]
	if crc32.ChecksumIEEE(section) != innerCRC {
		return nil, fmt.Errorf("%w: %s index section fails checksum", ErrSegmentCorrupt, path)
	}
	if len(section) < 6 {
		return nil, fmt.Errorf("%w: %s index section is %d bytes", ErrSegmentCorrupt, path, len(section))
	}
	idx := &segIndex{count: count, framesEnd: indexOff}
	idx.stride = int(binary.BigEndian.Uint16(section))
	entryCount := binary.BigEndian.Uint32(section[2:])
	section = section[6:]
	if idx.stride < 1 {
		return nil, fmt.Errorf("%w: %s index stride 0", ErrSegmentCorrupt, path)
	}
	want := (uint64(count) + uint64(idx.stride) - 1) / uint64(idx.stride)
	if uint64(entryCount) != want {
		return nil, fmt.Errorf("%w: %s index has %d entries for %d records at stride %d", ErrSegmentCorrupt, path, entryCount, count, idx.stride)
	}
	// Each entry needs at least 18 bytes, so the checksummed count still
	// cannot force a huge allocation.
	if uint64(entryCount) > uint64(len(section))/18 {
		return nil, fmt.Errorf("%w: %s index entry count %d exceeds section", ErrSegmentCorrupt, path, entryCount)
	}
	idx.entries = make([]segIndexEntry, 0, entryCount)
	prev := uint64(0)
	for i := uint32(0); i < entryCount; i++ {
		if len(section) < 18 {
			return nil, fmt.Errorf("%w: %s index truncated at entry %d", ErrSegmentCorrupt, path, i)
		}
		e := segIndexEntry{
			off:  binary.BigEndian.Uint64(section),
			user: bitvec.UserID(binary.BigEndian.Uint64(section[8:])),
		}
		klen := int(binary.BigEndian.Uint16(section[16:]))
		section = section[18:]
		if len(section) < klen {
			return nil, fmt.Errorf("%w: %s index entry %d key truncated", ErrSegmentCorrupt, path, i)
		}
		e.subset = string(section[:klen])
		section = section[klen:]
		if e.off < segV2HeaderSize || e.off >= indexOff || (i > 0 && e.off <= prev) {
			return nil, fmt.Errorf("%w: %s index entry %d offset %d out of range", ErrSegmentCorrupt, path, i, e.off)
		}
		prev = e.off
		idx.entries = append(idx.entries, e)
	}
	if len(section) < 5 {
		return nil, fmt.Errorf("%w: %s bloom header truncated", ErrSegmentCorrupt, path)
	}
	bloomLen := binary.BigEndian.Uint32(section)
	idx.bloomK = int(section[4])
	section = section[5:]
	if uint64(bloomLen) != uint64(len(section)) {
		return nil, fmt.Errorf("%w: %s bloom length %d does not match section", ErrSegmentCorrupt, path, bloomLen)
	}
	if bloomLen > 0 && (idx.bloomK < 1 || idx.bloomK > 64) {
		return nil, fmt.Errorf("%w: %s bloom hash count %d", ErrSegmentCorrupt, path, idx.bloomK)
	}
	idx.bloom = section
	// A structural walk of the frame length headers cross-checks the record
	// count against the frame area and pins every index entry to a real
	// frame boundary.  Without it, a forged count whose ceil(count/stride)
	// matches the entry count would make the indexed range reads silently
	// drop trailing records — the linear path catches that as trailing
	// bytes, and after this check the indexed path can't do worse.
	off := uint64(segV2HeaderSize)
	for i := uint32(0); i < count; i++ {
		if i%uint32(idx.stride) == 0 {
			if e := idx.entries[i/uint32(idx.stride)]; e.off != off {
				return nil, fmt.Errorf("%w: %s index entry for record %d points at %d, frame is at %d", ErrSegmentCorrupt, path, i, e.off, off)
			}
		}
		if indexOff-off < segV2FrameHdr {
			return nil, fmt.Errorf("%w: %s frame %d overruns the frame area", ErrSegmentCorrupt, path, i)
		}
		frameLen := uint64(binary.BigEndian.Uint32(data[off:]))
		off += segV2FrameHdr
		if indexOff-off < frameLen {
			return nil, fmt.Errorf("%w: %s frame %d overruns the frame area", ErrSegmentCorrupt, path, i)
		}
		off += frameLen
	}
	if off != indexOff {
		return nil, fmt.Errorf("%w: %s frame area has %d bytes beyond the last frame", ErrSegmentCorrupt, path, indexOff-off)
	}
	return idx, nil
}

// readFramesAt reads want records starting at record ordinal startOrd,
// whose frame starts at byte startOff and whose region ends at endOff
// (the next indexed frame or the end of the frame area).  The first
// decoded record must match the index entry's key — the spot check that
// turns a lying offset into a loud error instead of misattributed
// records.
func readFramesAt(path string, startOff, endOff uint64, entry segIndexEntry, want int) ([]sketch.Published, error) {
	if endOff < startOff {
		return nil, fmt.Errorf("%w: %s inverted frame range", ErrSegmentCorrupt, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	region := make([]byte, endOff-startOff)
	if _, err := f.ReadAt(region, int64(startOff)); err != nil {
		return nil, fmt.Errorf("%w: %s frame range read: %v", ErrSegmentCorrupt, path, err)
	}
	out := make([]sketch.Published, 0, want)
	for i := 0; i < want; i++ {
		if len(region) < segV2FrameHdr {
			return nil, fmt.Errorf("%w: %s frame range truncated %d records in", ErrSegmentCorrupt, path, i)
		}
		n := binary.BigEndian.Uint32(region)
		sum := binary.BigEndian.Uint32(region[4:])
		region = region[segV2FrameHdr:]
		if uint64(len(region)) < uint64(n) {
			return nil, fmt.Errorf("%w: %s frame overruns its range", ErrSegmentCorrupt, path)
		}
		payload := region[:n]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: %s frame fails checksum", ErrSegmentCorrupt, path)
		}
		p, err := wire.DecodePublished(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %s frame decode: %v", ErrSegmentCorrupt, path, err)
		}
		if i == 0 && (p.ID != entry.user || p.Subset.Key() != entry.subset) {
			return nil, fmt.Errorf("%w: %s index entry key mismatch at offset %d", ErrSegmentCorrupt, path, startOff)
		}
		out = append(out, p)
		region = region[n:]
	}
	return out, nil
}

// readSegmentRange returns up to n records of the segment starting at
// record ordinal from, seeking through the sparse index when one is
// loaded and falling back to the full linear read otherwise (v1
// segments, or a v2 index that failed any consistency check).
func readSegmentRange(meta segmentMeta, m *metrics, from, n int) ([]sketch.Published, error) {
	idx := meta.idx
	if idx == nil || len(idx.entries) == 0 || n <= 0 {
		if m != nil && n > 0 {
			m.indexFallbacks.Inc()
		}
		records, err := readSegment(meta.path)
		if err != nil {
			return nil, err
		}
		if from >= len(records) {
			return nil, nil
		}
		return records[from:min(from+n, len(records))], nil
	}
	count := int(idx.count)
	if from >= count {
		return nil, nil
	}
	end := min(from+n, count)
	ei := from / idx.stride // < len(entries): from < count and entries cover every stride
	startOrd := ei * idx.stride
	ej := (end + idx.stride - 1) / idx.stride
	endOff := idx.framesEnd
	if ej < len(idx.entries) {
		endOff = idx.entries[ej].off
	}
	records, err := readFramesAt(meta.path, idx.entries[ei].off, endOff, idx.entries[ei], end-startOrd)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err // compacted away, not corruption: caller re-seeks
		}
		// Index or frame inconsistency: degrade to the full scan, which
		// trusts nothing but the header count and per-record checksums.
		if m != nil {
			m.indexFallbacks.Inc()
		}
		records, ferr := readSegment(meta.path)
		if ferr != nil {
			return nil, ferr
		}
		if from >= len(records) {
			return nil, nil
		}
		return records[from:min(from+n, len(records))], nil
	}
	if m != nil {
		m.indexSeeks.Inc()
	}
	return records[from-startOrd:], nil
}

// lookupSegment finds the record for key in one segment: bloom filter
// first (a miss skips the file entirely), then a binary search of the
// sparse index and a one-stride frame read.  Index-free segments scan.
// The returned record's key always equals the queried key — every
// candidate is checked after decoding — so no index state can
// misattribute a record.
func lookupSegment(meta segmentMeta, m *metrics, key recordKey) (sketch.Published, bool, error) {
	idx := meta.idx
	if idx == nil {
		if m != nil {
			m.indexFallbacks.Inc()
		}
		return scanForKey(meta.path, key)
	}
	if len(idx.entries) == 0 {
		return sketch.Published{}, false, nil
	}
	if !bloomTest(idx.bloom, idx.bloomK, uint64(key.id)) {
		if m != nil {
			m.bloomSkips.Inc()
		}
		return sketch.Published{}, false, nil
	}
	// Rightmost entry with key <= target; the record, if present, lives in
	// that entry's stride.  A target below entry 0 (record 0's key) is
	// absent.
	ei := sort.Search(len(idx.entries), func(i int) bool {
		ek := recordKey{id: idx.entries[i].user, subset: idx.entries[i].subset}
		return keyLess(key, ek)
	}) - 1
	if ei < 0 {
		return sketch.Published{}, false, nil
	}
	endOff := idx.framesEnd
	if ei+1 < len(idx.entries) {
		endOff = idx.entries[ei+1].off
	}
	want := idx.stride
	if rest := int(idx.count) - ei*idx.stride; rest < want {
		want = rest
	}
	records, err := readFramesAt(meta.path, idx.entries[ei].off, endOff, idx.entries[ei], want)
	if err != nil {
		if os.IsNotExist(err) {
			return sketch.Published{}, false, err
		}
		if m != nil {
			m.indexFallbacks.Inc()
		}
		return scanForKey(meta.path, key)
	}
	if m != nil {
		m.indexSeeks.Inc()
	}
	for _, p := range records {
		if keyOf(p) == key {
			return p, true, nil
		}
	}
	return sketch.Published{}, false, nil
}

// scanForKey is the index-free point lookup: read the whole segment and
// match keys.
func scanForKey(path string, key recordKey) (sketch.Published, bool, error) {
	records, err := readSegment(path)
	if err != nil {
		return sketch.Published{}, false, err
	}
	for _, p := range records {
		if keyOf(p) == key {
			return p, true, nil
		}
	}
	return sketch.Published{}, false, nil
}

// mergeSorted merges sources that are each already in canonical
// (subset, user) order — immutable segments oldest first, the normalized
// WAL mirror last — into one deduplicated slice, later sources winning
// duplicate keys.  This replaces the O(n log n) re-sort of normalize for
// load and compaction with a linear k-way merge.  A source that is not
// strictly ascending (a foreign or hand-built segment) is detected
// during the key pass and the whole merge falls back to normalize, so
// sortedness is an optimization assumption, never a correctness one.
func mergeSorted(sources [][]sketch.Published) []sketch.Published {
	keys := make([][]recordKey, len(sources))
	total := 0
	for si, s := range sources {
		ks := make([]recordKey, len(s))
		for i, p := range s {
			ks[i] = keyOf(p)
			if i > 0 && !keyLess(ks[i-1], ks[i]) {
				all := make([]sketch.Published, 0, total)
				for _, s := range sources {
					all = append(all, s...)
				}
				return normalize(all)
			}
		}
		keys[si] = ks
		total += len(s)
	}
	idx := make([]int, len(sources))
	out := make([]sketch.Published, 0, total)
	for {
		best := -1
		for si := range sources {
			if idx[si] >= len(sources[si]) {
				continue
			}
			// "<=" via !keyLess(best, si): equal keys hand the win to the
			// later — newer — source.
			if best < 0 || !keyLess(keys[best][idx[best]], keys[si][idx[si]]) {
				best = si
			}
		}
		if best < 0 {
			return out
		}
		k := keys[best][idx[best]]
		out = append(out, sources[best][idx[best]])
		for si := range sources {
			if idx[si] < len(sources[si]) && keys[si][idx[si]] == k {
				idx[si]++
			}
		}
	}
}
