package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

// fuzzSegmentRecords deterministically fabricates a normalized record set
// from a seed: the fuzzer varies segment shape through (seed, n) while
// the test always knows the exact expected contents.
func fuzzSegmentRecords(seed uint64, n int) []sketch.Published {
	subsets := []bitvec.Subset{
		bitvec.MustSubset(0),
		bitvec.MustSubset(0, 3, 5),
		bitvec.MustSubset(1, 4),
		bitvec.MustSubset(2, 6, 7, 9),
	}
	records := make([]sketch.Published, 0, n)
	x := seed
	for i := 0; i < n; i++ {
		x = splitmix64(x + uint64(i))
		records = append(records, sketch.Published{
			ID:     bitvec.UserID(x % 100_000),
			Subset: subsets[int(x>>32)%len(subsets)],
			S:      sketch.Sketch{Key: x % 1024, Length: 10},
		})
	}
	return normalize(records)
}

// samePub compares records field-wise (Subset is not ==-comparable).
func samePub(a, b sketch.Published) bool {
	return a.ID == b.ID && a.S == b.S && a.Subset.Equal(b.Subset)
}

// FuzzSegmentIndex round-trips fuzzer-shaped record sets through the
// indexed segment writer, corrupts an arbitrary byte — index entries,
// footer lengths, bloom bits, frames, anywhere — optionally recomputing
// the whole-file checksum so the corruption reaches the index parsers
// instead of being caught at the outer wall, and then drives every read
// path.  The contract: reads either fail loudly or return exactly the
// written records (falling back past the broken index); they never
// panic, never return a wrong, missing or misattributed record, and
// hostile 64-bit lengths never drive huge allocations.
func FuzzSegmentIndex(f *testing.F) {
	f.Add(uint64(1), 10, -1, byte(0), false)
	f.Add(uint64(2), 0, -1, byte(0), false)
	f.Add(uint64(3), 40, 9, byte(0xFF), true)     // record count, outer CRC fixed
	f.Add(uint64(4), 40, 20, byte(0x01), true)    // early frame byte
	f.Add(uint64(5), 200, 4000, byte(0x80), true) // likely index/bloom territory
	f.Add(uint64(6), 33, -9, byte(0xFF), true)    // footer: indexOff bytes
	f.Add(uint64(7), 33, -16, byte(0xFF), true)   // footer: inner CRC
	f.Add(uint64(8), 64, -20, byte(0x40), true)   // bloom tail
	f.Fuzz(func(t *testing.T, seed uint64, n, corruptAt int, corruptXor byte, fixOuter bool) {
		if n < 0 || n > 300 {
			n = int(uint(n) % 301)
		}
		want := fuzzSegmentRecords(seed, n)
		image, _ := encodeSegmentV2(want)
		// Negative offsets index from the end (the footer); the fuzzer
		// reaches it without knowing the image length.
		if corruptAt < 0 {
			corruptAt = len(image) + corruptAt
		}
		corrupted := false
		if corruptAt >= 0 && corruptAt < len(image) && corruptXor != 0 {
			image[corruptAt] ^= corruptXor
			corrupted = true
			if fixOuter && corruptAt < len(image)-4 {
				// Recompute the whole-file checksum over the corrupt body:
				// models the adversarial case the inner checks exist for,
				// where the outer wall no longer catches the damage.
				binary.BigEndian.PutUint32(image[len(image)-4:], crc32.ChecksumIEEE(image[:len(image)-4]))
			}
		}
		path := filepath.Join(t.TempDir(), "seg-00000001.seg")
		if err := os.WriteFile(path, image, 0o644); err != nil {
			t.Fatal(err)
		}

		count, _, idx, _, err := openSegment(path)
		if err != nil {
			if !corrupted {
				t.Fatalf("clean segment failed open: %v", err)
			}
			return // loud failure is a correct outcome for corruption
		}
		meta := segmentMeta{seq: 1, path: path, bytes: int64(len(image)), records: count, idx: idx}

		checkAll := func(got []sketch.Published, err error) {
			t.Helper()
			if err != nil {
				if !corrupted {
					t.Fatalf("clean segment failed read: %v", err)
				}
				return
			}
			if len(got) != len(want) {
				t.Fatalf("read %d records, want %d (corrupted=%v)", len(got), len(want), corrupted)
			}
			for i := range got {
				if !samePub(got[i], want[i]) {
					t.Fatalf("record %d differs: got %+v want %+v", i, got[i], want[i])
				}
			}
		}
		checkAll(readSegment(path))

		// Range reads across several windows, including past the end.
		for _, from := range []int{0, 1, len(want) / 2, len(want) - 1, len(want) + 3} {
			if from < 0 {
				continue
			}
			got, err := readSegmentRange(meta, nil, from, 7)
			if err != nil {
				if !corrupted {
					t.Fatalf("clean segment failed range read at %d: %v", from, err)
				}
				continue
			}
			wantEnd := min(from+7, len(want))
			if from > len(want) {
				wantEnd = from
			}
			if from >= len(want) {
				if len(got) != 0 {
					t.Fatalf("range past the end returned %d records", len(got))
				}
				continue
			}
			if len(got) != wantEnd-from {
				t.Fatalf("range [%d,+7) returned %d records, want %d", from, len(got), wantEnd-from)
			}
			for i, p := range got {
				if !samePub(p, want[from+i]) {
					t.Fatalf("range record %d differs: got %+v want %+v", from+i, p, want[from+i])
				}
			}
		}

		// Point lookups: every present key must resolve to its exact
		// record or fail loudly — never to a different record, and on a
		// clean segment never to a miss.  A key never written must never
		// be found.
		for i, p := range want {
			if i%5 != 0 && len(want) > 20 {
				continue // sample large sets to keep fuzz iterations fast
			}
			got, ok, err := lookupSegment(meta, nil, keyOf(p))
			if err != nil {
				if !corrupted {
					t.Fatalf("clean segment lookup failed: %v", err)
				}
				continue
			}
			if ok && !samePub(got, p) {
				t.Fatalf("lookup of %v returned a different record: %+v", keyOf(p), got)
			}
			if !ok && !corrupted {
				t.Fatalf("clean segment lost record %v", keyOf(p))
			}
		}
		absent := recordKey{id: bitvec.UserID(7_777_777), subset: bitvec.MustSubset(8).Key()}
		if got, ok, err := lookupSegment(meta, nil, absent); err == nil && ok {
			t.Fatalf("lookup of a never-written key found %+v", got)
		}
	})
}
