package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// Segment files come in two versions, dispatched on the magic's last
// byte.  Version 1 (the original, still fully readable):
//
//	8  bytes magic "SKSEG\x00\x00\x01"
//	4  bytes big-endian record count
//	records: 4-byte big-endian length + wire.EncodePublished payload,
//	         sorted by (subset key, user id)
//	4  bytes big-endian CRC32 (IEEE) of everything above
//
// Version 2 adds per-record checksums, a sparse key index and a per-user
// bloom filter so reads seek instead of scanning; see segindex.go for the
// layout.  All new segments are written as v2; v1 segments are read via
// the linear path (no index to seek with) so existing data directories
// open unchanged.
//
// Segments of either version are written to a temporary file, fsynced
// and renamed into place, so a segment either exists completely or not
// at all; a whole-file checksum failure on load is real corruption and
// reported as an error.
var (
	segMagicV1 = [8]byte{'S', 'K', 'S', 'E', 'G', 0, 0, 1}
	segMagicV2 = [8]byte{'S', 'K', 'S', 'E', 'G', 0, 0, 2}
)

// ErrSegmentCorrupt is returned when a segment file fails validation.
var ErrSegmentCorrupt = errors.New("store: corrupt segment")

// segmentMeta tracks one on-disk segment.
type segmentMeta struct {
	seq     uint64
	path    string
	bytes   int64
	records uint64
	// idx is the parsed v2 index, nil for v1 segments (reads scan).  It
	// is immutable once set, like the segment itself.
	idx *segIndex
}

// segmentName renders the canonical file name for sequence number seq.
func segmentName(seq uint64) string { return fmt.Sprintf("seg-%08d.seg", seq) }

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// writeSegment atomically writes records as an indexed v2 segment seq in
// dir and returns its metadata, index included (the writer builds the
// index in memory, so its own output is never re-parsed).  Records must
// already be in canonical segment order (normalize and mergeSorted do
// this for every caller).
func writeSegment(dir string, seq uint64, records []sketch.Published) (segmentMeta, error) {
	buf, idx := encodeSegmentV2(records)
	final := filepath.Join(dir, segmentName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return segmentMeta{}, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := syncDir(dir); err != nil {
		return segmentMeta{}, err
	}
	return segmentMeta{seq: seq, path: final, bytes: int64(len(buf)), records: uint64(len(records)), idx: idx}, nil
}

// segmentBody validates the file at path — length, whole-file checksum,
// magic — and returns its version, declared record count and the full
// checksummed image.
func segmentBody(path string) (version int, count uint32, data []byte, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(data) < len(segMagicV1)+8 {
		return 0, 0, nil, fmt.Errorf("%w: %s is %d bytes", ErrSegmentCorrupt, path, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, 0, nil, fmt.Errorf("%w: %s fails checksum", ErrSegmentCorrupt, path)
	}
	switch {
	case string(body[:len(segMagicV1)]) == string(segMagicV1[:]):
		version = 1
	case string(body[:len(segMagicV2)]) == string(segMagicV2[:]):
		version = 2
	default:
		return 0, 0, nil, fmt.Errorf("%w: %s has bad magic", ErrSegmentCorrupt, path)
	}
	return version, binary.BigEndian.Uint32(body[len(segMagicV1):]), data, nil
}

// openSegment validates a segment and returns its record count and, for
// v2, its parsed index.  An index that fails any consistency check on an
// otherwise checksum-clean file returns nil (reads fall back to the
// linear path) rather than failing the open: the index is advisory.
func openSegment(path string) (uint64, *segIndex, error) {
	version, count, data, err := segmentBody(path)
	if err != nil {
		return 0, nil, err
	}
	if version < 2 {
		return uint64(count), nil, nil
	}
	idx, err := parseSegIndex(data, count, path)
	if err != nil {
		return uint64(count), nil, nil
	}
	return uint64(count), idx, nil
}

// readSegment loads and validates one segment file of either version,
// depending only on the header count and record framing — never on the
// v2 index section, which makes it the safe fallback when an index is
// absent or inconsistent.
func readSegment(path string) ([]sketch.Published, error) {
	version, count, data, err := segmentBody(path)
	if err != nil {
		return nil, err
	}
	rest := data[len(segMagicV1)+4 : len(data)-4]
	frameHdr := 4
	if version >= 2 {
		frameHdr = segV2FrameHdr
		if len(data) < segV2HeaderSize+segV2FooterSize {
			return nil, fmt.Errorf("%w: %s lacks a v2 footer", ErrSegmentCorrupt, path)
		}
		// The frame area ends exactly at the footer's index offset.  The
		// count and the offset cross-check each other: truncating the walk
		// anywhere else fails below as trailing bytes, so a corrupted count
		// cannot silently return a prefix of the records.
		indexOff := binary.BigEndian.Uint64(data[len(data)-12:])
		if indexOff < segV2HeaderSize || indexOff > uint64(len(data)-segV2FooterSize) {
			return nil, fmt.Errorf("%w: %s index offset %d out of range", ErrSegmentCorrupt, path, indexOff)
		}
		rest = data[segV2HeaderSize:indexOff]
	}
	// Cap the preallocation by what the bytes could possibly hold (each
	// record needs at least its frame header): the count is checksummed
	// but still input, and a crafted value must produce a decode error
	// below, not a huge allocation here.
	records := make([]sketch.Published, 0, min(int(count), len(rest)/frameHdr))
	for i := uint32(0); i < count; i++ {
		if len(rest) < frameHdr {
			return nil, fmt.Errorf("%w: %s truncated at record %d", ErrSegmentCorrupt, path, i)
		}
		n := binary.BigEndian.Uint32(rest)
		var sum uint32
		if version >= 2 {
			sum = binary.BigEndian.Uint32(rest[4:])
		}
		rest = rest[frameHdr:]
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("%w: %s truncated at record %d", ErrSegmentCorrupt, path, i)
		}
		if version >= 2 && crc32.ChecksumIEEE(rest[:n]) != sum {
			return nil, fmt.Errorf("%w: %s record %d fails checksum", ErrSegmentCorrupt, path, i)
		}
		p, err := wire.DecodePublished(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("%w: %s record %d: %v", ErrSegmentCorrupt, path, i, err)
		}
		records = append(records, p)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %s has %d trailing bytes", ErrSegmentCorrupt, path, len(rest))
	}
	return records, nil
}

// listSegments scans dir for segment files, sorted by sequence number.
// Leftover .tmp files from a crash mid-flush are removed.
func listSegments(dir string) ([]segmentMeta, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentMeta
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segmentMeta{seq: seq, path: filepath.Join(dir, e.Name()), bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
