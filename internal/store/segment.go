package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// Segment files come in two versions, dispatched on the magic's last
// byte.  Version 1 (the original, still fully readable):
//
//	8  bytes magic "SKSEG\x00\x00\x01"
//	4  bytes big-endian record count
//	records: 4-byte big-endian length + wire.EncodePublished payload,
//	         sorted by (subset key, user id)
//	4  bytes big-endian CRC32 (IEEE) of everything above
//
// Version 2 adds per-record checksums, a sparse key index and a per-user
// bloom filter so reads seek instead of scanning; see segindex.go for the
// layout.  All new segments are written as v2; v1 segments are read via
// the linear path (no index to seek with) so existing data directories
// open unchanged.
//
// Segments of either version are written to a temporary file, fsynced
// and renamed into place, so a segment either exists completely or not
// at all; a whole-file checksum failure on load is real corruption and
// reported as an error.
var (
	segMagicV1 = [8]byte{'S', 'K', 'S', 'E', 'G', 0, 0, 1}
	segMagicV2 = [8]byte{'S', 'K', 'S', 'E', 'G', 0, 0, 2}
)

// ErrSegmentCorrupt is returned when a segment file fails validation.
var ErrSegmentCorrupt = errors.New("store: corrupt segment")

// segmentMeta tracks one on-disk segment.
type segmentMeta struct {
	seq     uint64
	path    string
	bytes   int64
	records uint64
	// version is the segment format version (1 or 2), set at open.
	version int
	// idx is the parsed v2 index, nil for v1 segments (reads scan).  It
	// is immutable once set, like the segment itself.
	idx *segIndex
	// loaded, when non-nil, holds the records decoded eagerly at open —
	// decoding there both verifies every per-frame checksum (so a corrupt
	// segment fails Open loudly instead of the first read) and hands the
	// first full shard load its records with no second disk pass.  It is
	// consumed (nil'd) by that first load; segments written after open
	// never carry one.  Engines attach and replay their store immediately
	// at startup, so in practice the slice lives only between Open and
	// the first Iterate.
	loaded []sketch.Published
}

// segmentName renders the canonical file name for sequence number seq.
func segmentName(seq uint64) string { return fmt.Sprintf("seg-%08d.seg", seq) }

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// writeSegment atomically writes records as an indexed v2 segment seq in
// dir and returns its metadata, index included (the writer builds the
// index in memory, so its own output is never re-parsed).  Records must
// already be in canonical segment order (normalize and mergeSorted do
// this for every caller).
func writeSegment(dir string, seq uint64, records []sketch.Published) (segmentMeta, error) {
	buf, idx := encodeSegmentV2(records)
	final := filepath.Join(dir, segmentName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return segmentMeta{}, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := syncDir(dir); err != nil {
		return segmentMeta{}, err
	}
	return segmentMeta{seq: seq, path: final, bytes: int64(len(buf)), records: uint64(len(records)), version: 2, idx: idx}, nil
}

// segmentBody validates the file at path — length, magic, and for v1 the
// whole-file checksum — and returns its version, declared record count
// and the full image.  v2 images skip the outer checksum pass: every
// region is covered by an inner check instead (per-frame sums on the
// records, the footer's own checksum on the index, consistency
// cross-checks on the count), and FuzzSegmentIndex proves those alone
// keep every read path safe even when the outer sum has been recomputed
// over a corrupt body.  Skipping the redundant pass halves the bytes
// checksummed on the cold-start replay path, which is what lets an
// indexed open beat raw WAL replay.
func segmentBody(path string) (version int, count uint32, data []byte, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(data) < len(segMagicV1)+8 {
		return 0, 0, nil, fmt.Errorf("%w: %s is %d bytes", ErrSegmentCorrupt, path, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	switch {
	case string(body[:len(segMagicV1)]) == string(segMagicV1[:]):
		version = 1
	case string(body[:len(segMagicV2)]) == string(segMagicV2[:]):
		version = 2
	default:
		return 0, 0, nil, fmt.Errorf("%w: %s has bad magic", ErrSegmentCorrupt, path)
	}
	// v1 frames carry no per-record sums, so the outer checksum is the
	// only integrity wall — verify it before trusting a byte.
	if version == 1 && crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, 0, nil, fmt.Errorf("%w: %s fails checksum", ErrSegmentCorrupt, path)
	}
	return version, binary.BigEndian.Uint32(body[len(segMagicV1):]), data, nil
}

// openSegment validates a segment and returns its record count, format
// version, parsed v2 index and the whole validated file image (for
// segmentMeta.body).  An index that fails any consistency check on an
// otherwise checksum-clean file returns nil (reads fall back to the
// linear path) rather than failing the open: the index is advisory.
func openSegment(path string) (count uint64, version int, idx *segIndex, data []byte, err error) {
	version, c, data, err := segmentBody(path)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if version < 2 {
		return uint64(c), version, nil, data, nil
	}
	idx, err = parseSegIndex(data, c, path)
	if err != nil {
		return uint64(c), version, nil, data, nil
	}
	return uint64(c), version, idx, data, nil
}

// decodeSegmentRecords walks the record frames of a segment image,
// depending only on the header count and record framing — never on the
// v2 index section, which makes it the safe fallback when an index is
// absent or inconsistent.  For v2 the per-frame sums verified here are
// the integrity wall for record bytes (the outer whole-file sum is not
// checked on open): FuzzSegmentIndex guarantees reads never return a
// wrong record even when the outer checksum has been recomputed over a
// corrupt body, and the per-frame sums are what carry that guarantee.
func decodeSegmentRecords(version int, count uint32, data []byte, path string) ([]sketch.Published, error) {
	rest := data[len(segMagicV1)+4 : len(data)-4]
	frameHdr := 4
	if version >= 2 {
		frameHdr = segV2FrameHdr
		if len(data) < segV2HeaderSize+segV2FooterSize {
			return nil, fmt.Errorf("%w: %s lacks a v2 footer", ErrSegmentCorrupt, path)
		}
		// The frame area ends exactly at the footer's index offset.  The
		// count and the offset cross-check each other: truncating the walk
		// anywhere else fails below as trailing bytes, so a corrupted count
		// cannot silently return a prefix of the records.
		indexOff := binary.BigEndian.Uint64(data[len(data)-12:])
		if indexOff < segV2HeaderSize || indexOff > uint64(len(data)-segV2FooterSize) {
			return nil, fmt.Errorf("%w: %s index offset %d out of range", ErrSegmentCorrupt, path, indexOff)
		}
		rest = data[segV2HeaderSize:indexOff]
	}
	// Cap the preallocation by what the bytes could possibly hold (each
	// record needs at least its frame header): the count is checksummed
	// but still input, and a crafted value must produce a decode error
	// below, not a huge allocation here.
	records := make([]sketch.Published, 0, min(int(count), len(rest)/frameHdr))
	var dec wire.PublishedDecoder // records are subset-sorted: near-100% tag-cache hits
	for i := uint32(0); i < count; i++ {
		if len(rest) < frameHdr {
			return nil, fmt.Errorf("%w: %s truncated at record %d", ErrSegmentCorrupt, path, i)
		}
		n := binary.BigEndian.Uint32(rest)
		var sum uint32
		if version >= 2 {
			sum = binary.BigEndian.Uint32(rest[4:])
		}
		rest = rest[frameHdr:]
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("%w: %s truncated at record %d", ErrSegmentCorrupt, path, i)
		}
		if version >= 2 && crc32.ChecksumIEEE(rest[:n]) != sum {
			return nil, fmt.Errorf("%w: %s record %d fails checksum", ErrSegmentCorrupt, path, i)
		}
		p, err := dec.Decode(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("%w: %s record %d: %v", ErrSegmentCorrupt, path, i, err)
		}
		records = append(records, p)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %s has %d trailing bytes", ErrSegmentCorrupt, path, len(rest))
	}
	return records, nil
}

// readSegment loads and validates one segment file of either version from
// disk and decodes every record.
func readSegment(path string) ([]sketch.Published, error) {
	version, count, data, err := segmentBody(path)
	if err != nil {
		return nil, err
	}
	return decodeSegmentRecords(version, count, data, path)
}

// listSegments scans dir for segment files, sorted by sequence number.
// Leftover .tmp files from a crash mid-flush are removed.
func listSegments(dir string) ([]segmentMeta, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentMeta
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segmentMeta{seq: seq, path: filepath.Join(dir, e.Name()), bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
