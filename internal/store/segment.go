package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// Segment file layout:
//
//	8  bytes magic "SKSEG\x00\x00\x01"
//	4  bytes big-endian record count
//	records: 4-byte big-endian length + wire.EncodePublished payload,
//	         sorted by (subset key, user id)
//	4  bytes big-endian CRC32 (IEEE) of everything above
//
// Segments are written to a temporary file, fsynced and renamed into
// place, so a segment either exists completely or not at all; any
// checksum failure on load is real corruption and reported as an error.
var segMagic = [8]byte{'S', 'K', 'S', 'E', 'G', 0, 0, 1}

// ErrSegmentCorrupt is returned when a segment file fails validation.
var ErrSegmentCorrupt = errors.New("store: corrupt segment")

// segmentMeta tracks one on-disk segment.
type segmentMeta struct {
	seq     uint64
	path    string
	bytes   int64
	records uint64
}

// segmentName renders the canonical file name for sequence number seq.
func segmentName(seq uint64) string { return fmt.Sprintf("seg-%08d.seg", seq) }

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// writeSegment atomically writes records as segment seq in dir and
// returns its metadata.  Records must already be in canonical segment
// order (normalize does this for every caller).
func writeSegment(dir string, seq uint64, records []sketch.Published) (segmentMeta, error) {
	buf := make([]byte, 0, 16+len(records)*48)
	buf = append(buf, segMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(records)))
	for _, p := range records {
		buf = binary.BigEndian.AppendUint32(buf, uint32(wire.PublishedEncodedLen(p)))
		buf = wire.AppendPublished(buf, p)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	final := filepath.Join(dir, segmentName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return segmentMeta{}, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return segmentMeta{}, err
	}
	if err := syncDir(dir); err != nil {
		return segmentMeta{}, err
	}
	return segmentMeta{seq: seq, path: final, bytes: int64(len(buf)), records: uint64(len(records))}, nil
}

// segmentBody validates the file at path — length, checksum, magic —
// and returns its declared record count and the record bytes.
func segmentBody(path string) (uint32, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < len(segMagic)+8 {
		return 0, nil, fmt.Errorf("%w: %s is %d bytes", ErrSegmentCorrupt, path, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("%w: %s fails checksum", ErrSegmentCorrupt, path)
	}
	if string(body[:len(segMagic)]) != string(segMagic[:]) {
		return 0, nil, fmt.Errorf("%w: %s has bad magic", ErrSegmentCorrupt, path)
	}
	return binary.BigEndian.Uint32(body[len(segMagic):]), body[len(segMagic)+4:], nil
}

// statSegment validates a segment and returns its record count without
// decoding the records: open-time validation needs one pass over the
// bytes, not a per-record decode — rehydration decodes via Iterate.
func statSegment(path string) (uint64, error) {
	count, _, err := segmentBody(path)
	return uint64(count), err
}

// readSegment loads and validates one segment file.
func readSegment(path string) ([]sketch.Published, error) {
	count, rest, err := segmentBody(path)
	if err != nil {
		return nil, err
	}
	// Cap the preallocation by what the bytes could possibly hold (each
	// record needs at least its 4-byte length prefix): the count is
	// checksummed but still input, and a crafted value must produce a
	// decode error below, not a huge allocation here.
	records := make([]sketch.Published, 0, min(int(count), len(rest)/4))
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: %s truncated at record %d", ErrSegmentCorrupt, path, i)
		}
		n := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("%w: %s truncated at record %d", ErrSegmentCorrupt, path, i)
		}
		p, err := wire.DecodePublished(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("%w: %s record %d: %v", ErrSegmentCorrupt, path, i, err)
		}
		records = append(records, p)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %s has %d trailing bytes", ErrSegmentCorrupt, path, len(rest))
	}
	return records, nil
}

// listSegments scans dir for segment files, sorted by sequence number.
// Leftover .tmp files from a crash mid-flush are removed.
func listSegments(dir string) ([]segmentMeta, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentMeta
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segmentMeta{seq: seq, path: filepath.Join(dir, e.Name()), bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
