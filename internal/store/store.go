package store

import (
	"sort"
	"sync"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

// Store is the persistence interface the engine writes published sketches
// through.  Implementations must be safe for concurrent use.
type Store interface {
	// Append durably records one published sketch.  When Append returns
	// nil the record must survive a crash of the process (subject to the
	// implementation's fsync policy for machine crashes).
	Append(p sketch.Published) error
	// Iterate calls fn for every stored record with (user, subset)
	// deduplication applied — the newest record for a pair wins.  It is
	// how the engine rehydrates its in-memory table on startup.
	// Iteration stops at the first error, which is returned.
	Iterate(fn func(p sketch.Published) error) error
	// Flush makes every appended record durable (fsync) and rolls any WAL
	// past the flush threshold into a segment.
	Flush() error
	// Close flushes and releases all resources.  The store must not be
	// used afterwards.
	Close() error
	// Stats reports sizes and record counts for monitoring.
	Stats() Stats
}

// BatchAppender is implemented by stores that can land many records in
// one durability operation — the durable store groups a batch into one
// commit-window entry (one fsync, one scheduler park) per touched
// shard, which is what carries batched ingest to millions of records
// per second while every acknowledged record is still durable.
type BatchAppender interface {
	// AppendBatch appends every record of ps whose index is absent from
	// failed with Append's durability guarantee.  Atomicity is per
	// internal grouping (per shard for the durable store), not per call:
	// on error, failed lists exactly the records that did NOT become
	// durable, in ascending input order, and err is the earliest failed
	// record's cause.  Records outside failed are durable and stay —
	// callers reconcile by rolling back precisely the failed ones.
	AppendBatch(ps []sketch.Published) (failed []int, err error)
}

// ShardStats describes one shard of a durable store.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// WALBytes is the current size of the shard's write-ahead log.
	WALBytes int64
	// WALRecords is the number of records in the WAL (not yet rolled
	// into a segment).
	WALRecords uint64
	// Segments is the number of immutable segment files.
	Segments int
	// SegmentBytes is the total size of the segment files.
	SegmentBytes int64
	// SegmentRecords is the total number of records across segments
	// (before deduplication against the WAL).
	SegmentRecords uint64
}

// Stats is a snapshot of a store's size and layout.
type Stats struct {
	// Dir is the data directory, empty for in-memory stores.
	Dir string
	// Records is the total number of raw records (WAL + segments, before
	// deduplication).
	Records uint64
	// Shards holds per-shard detail; nil for in-memory stores.
	Shards []ShardStats
}

// WALBytes returns the total WAL size across shards.
func (s Stats) WALBytes() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.WALBytes
	}
	return n
}

// SegmentBytes returns the total segment size across shards.
func (s Stats) SegmentBytes() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.SegmentBytes
	}
	return n
}

// Segments returns the total segment count across shards.
func (s Stats) Segments() int {
	n := 0
	for _, sh := range s.Shards {
		n += sh.Segments
	}
	return n
}

// recordKey identifies the (user, subset) pair deduplication works over.
type recordKey struct {
	id     bitvec.UserID
	subset string
}

func keyOf(p sketch.Published) recordKey {
	return recordKey{id: p.ID, subset: p.Subset.Key()}
}

// Mem is an in-memory Store: the same interface and deduplication
// semantics as the durable store with no disk underneath.  Tests and
// examples that do not care about persistence use it so the engine's
// storage path stays exercised.
type Mem struct {
	mu      sync.Mutex
	records map[recordKey]sketch.Published
	order   []recordKey // first-append order, for deterministic iteration
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{records: make(map[recordKey]sketch.Published)}
}

// Append implements Store.  Re-appending a (user, subset) pair overwrites
// the previous record, matching the durable store's newest-wins merge.
func (m *Mem) Append(p sketch.Published) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := keyOf(p)
	if _, ok := m.records[k]; !ok {
		m.order = append(m.order, k)
	}
	m.records[k] = p
	return nil
}

// Iterate implements Store.
func (m *Mem) Iterate(fn func(p sketch.Published) error) error {
	m.mu.Lock()
	out := make([]sketch.Published, 0, len(m.order))
	for _, k := range m.order {
		out = append(out, m.records[k])
	}
	m.mu.Unlock()
	for _, p := range out {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Store; there is nothing to make durable.
func (m *Mem) Flush() error { return nil }

// Close implements Store.
func (m *Mem) Close() error { return nil }

// Stats implements Store.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Records: uint64(len(m.records))}
}

// normalize deduplicates records by (user, subset) — the newest wins, so
// the input must be ordered oldest source first — and sorts the
// survivors into canonical (subset key, user id) order.  Subset keys are
// materialised once per record rather than per comparison: rolls,
// compaction and cold-start replay all funnel through here, so the sort
// must not allocate O(n log n) tag encodings.
func normalize(records []sketch.Published) []sketch.Published {
	// Ingest runs tend to repeat the same subset back to back, so reuse
	// the previous record's key string when the subsets match — that
	// skips the tag encoding AND makes the sort's equal-key compares a
	// pointer check.
	keys := make([]string, len(records))
	for i, p := range records {
		if i > 0 && p.Subset.Equal(records[i-1].Subset) {
			keys[i] = keys[i-1]
		} else {
			keys[i] = p.Subset.Key()
		}
	}
	idx := make([]int, len(records))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if keys[ia] != keys[ib] {
			return keys[ia] < keys[ib]
		}
		if records[ia].ID != records[ib].ID {
			return records[ia].ID < records[ib].ID
		}
		// Arrival order breaks key ties, so duplicates of a pair sort
		// oldest to newest and the dedup pass below keeps the last.
		return ia < ib
	})
	out := make([]sketch.Published, 0, len(records))
	for j, i := range idx {
		if j+1 < len(idx) {
			ni := idx[j+1]
			if keys[ni] == keys[i] && records[ni].ID == records[i].ID {
				continue // a newer record for the same pair follows
			}
		}
		out = append(out, records[i])
	}
	return out
}
