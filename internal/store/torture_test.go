package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// TestBatchTruncationEveryOffset is the group-commit tear matrix: one
// AppendBatch writes a multi-record commit window, the log is truncated
// at every byte offset across the whole batch, and recovery must replay
// exactly the fully-written prefix — never an error, never a torn
// record, never a record from beyond the cut.
func TestBatchTruncationEveryOffset(t *testing.T) {
	dir := t.TempDir()
	b := bitvec.MustSubset(0, 3, 5)
	const k = 6
	st, err := Open(Options{Dir: dir, Shards: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]sketch.Published, k)
	for i := range batch {
		batch[i] = testRecord(uint64(i+1), b)
	}
	if err := st.shards[0].wal.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	// The frame boundaries within the batch, to know the expected prefix
	// at every cut.
	bounds := make([]int64, 0, k+1)
	off := int64(0)
	bounds = append(bounds, off)
	for _, p := range batch {
		off += int64(walFrameLen(p))
		bounds = append(bounds, off)
	}
	walPath := st.shards[0].wal.path
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != bounds[k] {
		t.Fatalf("batch wrote %d bytes, expected %d", len(full), bounds[k])
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		wantRecords := 0
		for wantRecords < k && bounds[wantRecords+1] <= cut {
			wantRecords++
		}
		tornDir := filepath.Join(t.TempDir(), "torn")
		shardDir := filepath.Join(tornDir, "shard-0000")
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		tornPath := filepath.Join(shardDir, "wal.log")
		if err := os.WriteFile(tornPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(Options{Dir: tornDir, CompactInterval: -1})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		got := collect(t, st2)
		if len(got) != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want the %d-record prefix", cut, len(got), wantRecords)
		}
		for _, p := range got {
			if uint64(p.ID) > uint64(wantRecords) {
				t.Fatalf("cut=%d: recovered record %d from beyond the cut", cut, p.ID)
			}
			want := testRecord(uint64(p.ID), b)
			if p.S != want.S || !p.Subset.Equal(b) {
				t.Fatalf("cut=%d: recovered corrupted record %+v", cut, p)
			}
		}
		// The torn suffix must be physically gone so appends restart clean.
		if info, err := os.Stat(tornPath); err != nil || info.Size() != bounds[wantRecords] {
			t.Fatalf("cut=%d: wal not truncated to %d (size %v, err %v)", cut, bounds[wantRecords], info.Size(), err)
		}
		if err := st2.Append(testRecord(100, b)); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if got := collect(t, st2); len(got) != wantRecords+1 {
			t.Fatalf("cut=%d: after recovery append, %d records, want %d", cut, len(got), wantRecords+1)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// tortureSubset is the subset every torture-child record publishes for.
func tortureSubset() bitvec.Subset { return bitvec.MustSubset(0, 3, 5) }

const (
	tortureWriters   = 8
	tortureIDStride  = 1_000_000 // writer g owns ids g*stride+1 ...
	tortureMaxPerGor = 200_000
)

// TestGroupCommitTortureChild is the re-exec helper for
// TestSIGKILLMidCommitWindow: it opens a durable store in fsync mode and
// streams concurrent appends — sharing commit windows — printing
// "ack <id>" only after each Append returns.  The parent SIGKILLs it
// mid-stream.
func TestGroupCommitTortureChild(t *testing.T) {
	dir := os.Getenv("STORE_TORTURE_DIR")
	if dir == "" {
		t.Skip("re-exec helper for TestSIGKILLMidCommitWindow")
	}
	st, err := Open(Options{Dir: dir, Shards: 2, Fsync: true, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	b := tortureSubset()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < tortureWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(1); i <= tortureMaxPerGor; i++ {
				id := uint64(g)*tortureIDStride + i
				if err := st.Append(testRecord(id, b)); err != nil {
					return
				}
				mu.Lock()
				fmt.Printf("ack %d\n", id)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}

// TestSIGKILLMidCommitWindow is the process-level group-commit torture:
// a child process appends from many goroutines sharing fsync'd commit
// windows and reports each acknowledged record; the parent SIGKILLs it
// mid-window, reopens the data directory and requires (1) every
// acknowledged record recovered intact, (2) nothing recovered that was
// never sent, and (3) at most a small bound of durable-but-unreported
// records — the commit that was in flight when the kill landed.
func TestSIGKILLMidCommitWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs and kills a child process; skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestGroupCommitTortureChild$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_TORTURE_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	const killAfter = 2000
	acked := make(map[uint64]bool)
	sc := bufio.NewScanner(stdout)
	killed := false
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, "ack ")
		if !ok {
			continue // test framework chatter
		}
		id, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		acked[id] = true
		if !killed && len(acked) >= killAfter {
			// SIGKILL lands while commit windows are mid-flight; keep
			// draining the pipe, since acks written before the kill may
			// still be buffered in it and they are real acknowledgements.
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			killed = true
		}
	}
	cmd.Wait()
	if !killed {
		t.Fatalf("child exited after only %d acks, before the kill threshold %d", len(acked), killAfter)
	}

	st, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer st.Close()
	b := tortureSubset()
	recovered := make(map[uint64]bool)
	if err := st.Iterate(func(p sketch.Published) error {
		id := uint64(p.ID)
		g, i := id/tortureIDStride, id%tortureIDStride
		if g >= tortureWriters || i < 1 || i > tortureMaxPerGor {
			t.Fatalf("recovered record for user %d that was never sent", id)
		}
		want := testRecord(id, b)
		if p.S != want.S || !p.Subset.Equal(b) {
			t.Fatalf("recovered record for user %d corrupted: %+v", id, p)
		}
		recovered[id] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for id := range acked {
		if !recovered[id] {
			t.Fatalf("acknowledged record for user %d lost by SIGKILL (acked %d, recovered %d)", id, len(acked), len(recovered))
		}
	}
	// Durable-but-unreported records can only come from (a) an Append
	// whose ack print raced the kill — at most one per writer — and (b)
	// the members of the one commit window whose fsync completed but
	// whose cohort was not yet woken — at most one parked record per
	// writer.  Anything beyond that bound would mean unacknowledged
	// suffixes survive, which group commit must never allow.
	if extra := len(recovered) - len(acked); extra > 2*tortureWriters {
		t.Fatalf("recovered %d records beyond the %d acknowledged; bound is %d", extra, len(acked), 2*tortureWriters)
	}
}

// encodeSegmentV1 renders records in the PR-8-era unindexed segment
// format, byte-for-byte what the old writeSegment produced: the
// backward-compat fixtures are hand-built so the old writer's absence
// from the tree does not silence this test.
func encodeSegmentV1(records []sketch.Published) []byte {
	buf := make([]byte, 0, 16+len(records)*48)
	buf = append(buf, segMagicV1[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(records)))
	for _, p := range records {
		buf = binary.BigEndian.AppendUint32(buf, uint32(wire.PublishedEncodedLen(p)))
		buf = wire.AppendPublished(buf, p)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// encodeWALFrames renders records as per-append WAL frames (the framing
// is unchanged from PR 8, so a legacy log is just one frame per record).
func encodeWALFrames(records []sketch.Published) []byte {
	var buf []byte
	for _, p := range records {
		hdr := len(buf)
		buf = append(buf, zeroHeader[:]...)
		buf = wire.AppendPublished(buf, p)
		payload := buf[hdr+walHeaderSize:]
		binary.BigEndian.PutUint32(buf[hdr:], uint32(len(payload)))
		binary.BigEndian.PutUint32(buf[hdr+4:], crc32.ChecksumIEEE(payload))
	}
	return buf
}

// TestV1DataDirBackwardCompat builds a PR-8-era data directory by hand —
// unindexed v1 segments plus a per-append WAL — and requires the new
// store to (1) open it and answer bit-identically to the expected
// record set, including newest-wins overwrites spanning the v1 segment
// and the WAL, (2) stream it through ReadBatch and find records through
// Lookup via the index-free fallback, and (3) write every new segment
// (roll and compaction alike) in the indexed v2 format.
func TestV1DataDirBackwardCompat(t *testing.T) {
	dir := t.TempDir()
	b := bitvec.MustSubset(0, 3, 5)
	b2 := bitvec.MustSubset(1, 4)

	// Shard placement must match the store's hash; build per-shard
	// fixtures with the same function the store uses.
	const shards = 2
	var segRecords [shards][]sketch.Published
	var walRecords [shards][]sketch.Published
	for id := uint64(1); id <= 40; id++ {
		p := testRecord(id, b)
		segRecords[userShard(p.ID, shards)] = append(segRecords[userShard(p.ID, shards)], p)
	}
	for id := uint64(30); id <= 50; id++ {
		// Overlaps ids 30..40: the WAL copy must win (newest wins).
		p := testRecord(id, b2)
		walRecords[userShard(p.ID, shards)] = append(walRecords[userShard(p.ID, shards)], p)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		shardDir := filepath.Join(dir, shardDirName(s))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir, segmentName(1)), encodeSegmentV1(normalize(segRecords[s])), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir, "wal.log"), encodeWALFrames(walRecords[s]), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want := indexRecords(t, normalize(append(append([]sketch.Published{}, testRecordsRange(1, 40, b)...), testRecordsRange(30, 50, b2)...)))

	st, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatalf("opening a v1 data dir: %v", err)
	}
	got := indexRecords(t, collect(t, st))
	if len(got) != len(want) {
		t.Fatalf("v1 dir yields %d records, want %d", len(got), len(want))
	}
	for k, s := range want {
		if got[k] != s {
			t.Fatalf("record %v differs after v1 open: got %v want %v", k, got[k], s)
		}
	}

	// ReadBatch must stream the same set through the index-free fallback.
	streamed := make(map[recordKey]sketch.Sketch)
	cursor, done := uint64(0), false
	for !done {
		var batch []sketch.Published
		var err error
		batch, cursor, done, err = st.ReadBatch(cursor, 7)
		if err != nil {
			t.Fatalf("ReadBatch over v1 segments: %v", err)
		}
		for _, p := range batch {
			streamed[keyOf(p)] = p.S
		}
	}
	for k, s := range want {
		if streamed[k] != s {
			t.Fatalf("record %v differs in v1 ReadBatch stream: got %v want %v", k, streamed[k], s)
		}
	}

	// Lookup must find v1-segment-resident and WAL-resident records alike.
	if p, ok, err := st.Lookup(bitvec.UserID(5), b.Key()); err != nil || !ok || p.S != testRecord(5, b).S {
		t.Fatalf("Lookup(5, b) over a v1 segment = %+v %v %v", p, ok, err)
	}
	if p, ok, err := st.Lookup(bitvec.UserID(45), b2.Key()); err != nil || !ok || p.S != testRecord(45, b2).S {
		t.Fatalf("Lookup(45, b2) in the legacy WAL = %+v %v %v", p, ok, err)
	}
	if _, ok, err := st.Lookup(bitvec.UserID(9999), b.Key()); err != nil || ok {
		t.Fatalf("Lookup(absent) = %v %v, want a miss", ok, err)
	}

	// The next flush must write v2: roll every WAL (Flush only rolls past
	// the threshold, so force the roll directly) and compact, then check
	// every segment on disk carries the v2 magic and the reopened store
	// still answers identically.
	for _, sh := range st.shards {
		sh.mu.Lock()
		err := sh.rollLocked()
		sh.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CompactNow(2); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		shardDir := filepath.Join(dir, shardDirName(s))
		entries, err := os.ReadDir(shardDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if _, ok := parseSegmentName(e.Name()); !ok {
				continue
			}
			data, err := os.ReadFile(filepath.Join(shardDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if len(data) < 8 || string(data[:8]) != string(segMagicV2[:]) {
				t.Fatalf("segment %s written after upgrade is not v2", e.Name())
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got2 := indexRecords(t, collect(t, st2))
	if len(got2) != len(want) {
		t.Fatalf("after v2 rewrite, %d records, want %d", len(got2), len(want))
	}
	for k, s := range want {
		if got2[k] != s {
			t.Fatalf("record %v differs after v2 rewrite: got %v want %v", k, got2[k], s)
		}
	}
}

// testRecordsRange fabricates records for ids lo..hi over b.
func testRecordsRange(lo, hi uint64, b bitvec.Subset) []sketch.Published {
	out := make([]sketch.Published, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		out = append(out, testRecord(id, b))
	}
	return out
}

// TestConcurrentGroupCommitRace exercises the full concurrent surface
// under the race detector: many goroutines of fsync'd appends sharing
// commit windows, interleaved with Lookups of just-acknowledged records
// (acknowledged means immediately queryable), ReadBatch streams,
// snapshot rolls via Flush, and compaction passes.  The tiny flush
// threshold forces rolls and compactions to overlap the appends.
func TestConcurrentGroupCommitRace(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{
		Dir:             dir,
		Shards:          2,
		Fsync:           true,
		FlushThreshold:  4 << 10,
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := tortureSubset()
	const (
		writers   = 8
		perWriter = 150
		batchSize = 10
	)
	var writersWG, churnWG sync.WaitGroup
	errc := make(chan error, writers+2)
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			if g%2 == 1 {
				// Half the writers land their records through AppendBatch,
				// so multi-record waiters and per-record Appends share the
				// same commit windows under the race detector.
				for lo := uint64(1); lo <= perWriter; lo += batchSize {
					batch := make([]sketch.Published, 0, batchSize)
					for i := lo; i < lo+batchSize && i <= perWriter; i++ {
						batch = append(batch, testRecord(uint64(g)*tortureIDStride+i, b))
					}
					if failed, err := st.AppendBatch(batch); err != nil || len(failed) > 0 {
						errc <- fmt.Errorf("append batch at %d: %d failed: %w", lo, len(failed), err)
						return
					}
					for _, p := range batch {
						got, ok, err := st.Lookup(p.ID, b.Key())
						if err != nil || !ok || got.S != p.S {
							errc <- fmt.Errorf("batch-acknowledged record %d not queryable: %+v %v %v", p.ID, got, ok, err)
							return
						}
					}
				}
				return
			}
			for i := uint64(1); i <= perWriter; i++ {
				id := uint64(g)*tortureIDStride + i
				p := testRecord(id, b)
				if err := st.Append(p); err != nil {
					errc <- fmt.Errorf("append %d: %w", id, err)
					return
				}
				// Acknowledged means immediately queryable.
				got, ok, err := st.Lookup(p.ID, b.Key())
				if err != nil || !ok || got.S != p.S {
					errc <- fmt.Errorf("acknowledged record %d not queryable: %+v %v %v", id, got, ok, err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	churnWG.Add(2)
	go func() { // roll + compaction churn
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Flush(); err != nil {
				errc <- fmt.Errorf("flush: %w", err)
				return
			}
			if err := st.CompactNow(2); err != nil {
				errc <- fmt.Errorf("compact: %w", err)
				return
			}
		}
	}()
	go func() { // concurrent batch streaming
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cursor, done := uint64(0), false
			for !done {
				var err error
				_, cursor, done, err = st.ReadBatch(cursor, 64)
				if err != nil {
					errc <- fmt.Errorf("readbatch: %w", err)
					return
				}
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	churnWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every acknowledged record present exactly once with the right
	// contents, across WAL, rolled and compacted segments.
	got := indexRecords(t, collect(t, st))
	if len(got) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(got), writers*perWriter)
	}
	for g := 0; g < writers; g++ {
		for i := uint64(1); i <= perWriter; i++ {
			id := uint64(g)*tortureIDStride + i
			want := testRecord(id, b)
			if got[keyOf(want)] != want.S {
				t.Fatalf("record %d missing or corrupt after concurrent torture", id)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the same set must replay, proving the acknowledged records
	// were durable, not just cached.
	st2, err := Open(Options{Dir: dir, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	again := indexRecords(t, collect(t, st2))
	if len(again) != writers*perWriter {
		t.Fatalf("reopen recovered %d records, want %d", len(again), writers*perWriter)
	}
}
