package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/wire"
)

// walHeaderSize is the per-record framing: a 4-byte big-endian payload
// length followed by a 4-byte big-endian CRC32 (IEEE) of the payload.
const walHeaderSize = 8

// maxRecordSize bounds one WAL record.  Sketch records are tiny (tens of
// bytes), so anything larger marks a torn or corrupt tail.
const maxRecordSize = wire.MaxFrameSize

// ErrRecordTooLarge is returned when asked to append a record exceeding
// maxRecordSize.
var ErrRecordTooLarge = errors.New("store: record exceeds maximum size")

// wal is one shard's write-ahead log.  Appends go straight to the file
// with a single write(2) each — no user-space buffering — so a record is
// in the kernel (and survives SIGKILL) the moment Append returns.  An
// optional fsync per append extends the guarantee to machine crashes.
type wal struct {
	f       *os.File
	path    string
	size    int64
	records uint64
	fsync   bool
	scratch []byte
	// one is the reused single-record batch Append wraps around
	// AppendBatch, keeping the lone-writer path allocation-free.
	one [1]sketch.Published
	// pending mirrors the log's acknowledged records in append order, so
	// rolls and reads never re-read the file from disk (bounded by the
	// flush threshold, a few MiB of tiny records per shard).  A record
	// enters pending only after its append fully succeeded, which keeps a
	// NACKed-but-written record out of segments and query results.
	pending []sketch.Published
	// m, when non-nil, records append/fsync latency; see metrics.go.
	m *metrics
	// broken is set when a failed write could not be rolled back: the
	// on-disk log may hold torn bytes at the tail that a later append
	// would bury mid-file, where replay would truncate acknowledged
	// records behind the tear.  While set, Append first re-replays the
	// log to cut the tear off; only if that repair also fails does the
	// append itself fail.
	broken bool
}

// ErrWALBroken is returned by appends after an unrecoverable write error.
var ErrWALBroken = errors.New("store: wal broken by an unrecoverable write error")

// openWAL opens (creating if needed) the log at path for appending.
// Callers must have replayed the file first and pass the replayed
// records and post-truncation size.
func openWAL(path string, size int64, records []sketch.Published, fsync bool, m *metrics) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, path: path, size: size, records: uint64(len(records)), fsync: fsync, pending: records, m: m}, nil
}

// Append writes one record: a one-record commit batch.
func (w *wal) Append(p sketch.Published) error {
	w.one[0] = p
	return w.AppendBatch(w.one[:])
}

// walFrameLen is the framed on-disk size of one record.
func walFrameLen(p sketch.Published) int {
	return walHeaderSize + wire.PublishedEncodedLen(p)
}

// zeroHeader is appended as a placeholder while framing a batch record,
// then overwritten with the real length and checksum.
var zeroHeader [walHeaderSize]byte

// AppendBatch writes a batch of records — a commit window — with one
// write(2) and, in fsync mode, one fsync covering every record: the
// group-commit primitive that amortizes the durability cost over all
// writers parked on the window.  The batch is all-or-nothing: every frame
// is assembled in the reused scratch buffer and written in a single call,
// and a failed write or fsync truncates the log back to its pre-batch
// size, so no record the callers will be NACKed for can resurrect on
// replay.  A crash mid-write can tear only the batch's tail, which replay
// cuts back to the last fully-written record — exactly the acknowledged-
// prefix rule, since no record of a torn batch was ever acknowledged.
func (w *wal) AppendBatch(ps []sketch.Published) error {
	if len(ps) == 0 {
		return nil
	}
	for _, p := range ps {
		if n := wire.PublishedEncodedLen(p); n > maxRecordSize {
			return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, n)
		}
	}
	if w.broken {
		if err := w.repair(); err != nil {
			return fmt.Errorf("%w: %v", ErrWALBroken, err)
		}
	}
	buf := w.scratch[:0]
	for _, p := range ps {
		hdr := len(buf)
		buf = append(buf, zeroHeader[:]...)
		buf = wire.AppendPublished(buf, p)
		payload := buf[hdr+walHeaderSize:]
		binary.BigEndian.PutUint32(buf[hdr:], uint32(len(payload)))
		binary.BigEndian.PutUint32(buf[hdr+4:], crc32.ChecksumIEEE(payload))
	}
	w.scratch = buf
	start := now(w.m)
	if n, err := w.f.Write(buf); err != nil {
		// A partial write leaves torn bytes that are NOT at the tail once
		// a later append lands after them — replay would then truncate
		// acknowledged records.  Cut the file back to the last good
		// record; if even that fails, refuse all further appends.
		if n > 0 {
			if terr := w.f.Truncate(w.size); terr != nil {
				w.broken = true
			}
		}
		return fmt.Errorf("store: wal append: %w", err)
	}
	if w.m != nil {
		w.m.appendLatency.ObserveSince(start)
	}
	if w.fsync {
		syncStart := now(w.m)
		if err := w.f.Sync(); err != nil {
			// The write reached the kernel but stable storage is in doubt
			// and fsync error semantics make retrying unsafe.  Roll the
			// whole batch back out so no NACKed publish can resurrect.
			if terr := w.f.Truncate(w.size); terr != nil {
				w.broken = true
			}
			return fmt.Errorf("store: wal fsync: %w", err)
		}
		if w.m != nil {
			w.m.fsyncLatency.ObserveSince(syncStart)
		}
	}
	w.size += int64(len(buf))
	w.records += uint64(len(ps))
	w.pending = append(w.pending, ps...)
	return nil
}

// repair cuts a broken log back to its acknowledged prefix.  w.size
// never counts a record whose append returned an error, so truncating
// to it removes both torn bytes and a fully-written record whose fsync
// failed after the write — a publish the caller was told failed must
// not resurrect (replaying the log instead would count such a
// CRC-valid record back in).  The condition that made the original
// rollback fail (typically a full disk) is often transient, so a later
// append gets one repair attempt instead of the shard being down until
// restart.  A process that dies while broken loses this protection:
// restart replay keeps every CRC-valid record, so a NACKed publish can
// resurrect across a crash — the fsync-failure ambiguity every WAL
// without revocation records has.
func (w *wal) repair() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.broken = false
	return nil
}

// Sync flushes the log to stable storage.
func (w *wal) Sync() error { return w.f.Sync() }

// Close closes the underlying file without syncing.
func (w *wal) Close() error { return w.f.Close() }

// Truncate empties the log after its records were rolled into a segment.
func (w *wal) Truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	// O_APPEND writes ignore the seek offset on POSIX, but reset it anyway
	// so size accounting and the file offset agree on every platform.
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.size = 0
	w.records = 0
	// Keep the mirror's capacity: every consumer copies records out under
	// the shard lock, so the backing array is never retained past a roll,
	// and the next fill cycle skips the regrowth.
	w.pending = w.pending[:0]
	if err := w.f.Sync(); err != nil {
		return err
	}
	// The log is provably empty and clean now, so any earlier
	// unrecoverable-write state no longer applies.
	w.broken = false
	return nil
}

// replayWAL reads every fully-written record of the log at path and
// truncates a torn tail in place.  A missing file is an empty log.  The
// returned size is the file size after truncation.
//
// Any framing violation — short header, implausible length, short payload
// or checksum mismatch — marks the end of the valid prefix: everything
// before it is returned and everything from it on is cut off.  This is
// exactly the state a crash mid-append leaves behind.
func replayWAL(path string) (records []sketch.Published, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	valid := int64(0)
	var dec wire.PublishedDecoder // replayed batches cluster by subset
	for {
		rest := data[valid:]
		if len(rest) < walHeaderSize {
			break
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		// Compare in int64: a log past 4 GiB must not have its length
		// truncated to uint32, or valid records would be cut off.
		if n > maxRecordSize || int64(len(rest))-walHeaderSize < int64(n) {
			break
		}
		payload := rest[walHeaderSize : walHeaderSize+int64(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		p, err := dec.Decode(payload)
		if err != nil {
			// The framing was intact but the payload does not decode: the
			// record was fully written yet corrupt, which atomic appends
			// never produce.  Still treat it as the end of the valid
			// prefix rather than failing recovery.
			break
		}
		records = append(records, p)
		valid += walHeaderSize + int64(n)
	}
	if valid != int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return nil, 0, fmt.Errorf("store: truncating torn wal tail of %s: %w", path, err)
		}
	}
	return records, valid, nil
}
