package store

import (
	"os"
	"path/filepath"
	"testing"

	"sketchprivacy/internal/bitvec"
)

// TestWALTornTailEveryOffset is the kill-mid-write simulation: a WAL of k
// records is truncated at every byte offset inside its last record, and
// recovery must return exactly the k-1 fully-written records — never an
// error, never a partial record.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	b := bitvec.MustSubset(0, 3, 5)
	const k = 8
	st, err := Open(Options{Dir: dir, Shards: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	var lastStart int64
	for i := uint64(1); i <= k; i++ {
		lastStart = st.shards[0].wal.size
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	walPath := st.shards[0].wal.path
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	for cut := lastStart; cut < int64(len(full)); cut++ {
		tornDir := filepath.Join(t.TempDir(), "torn")
		shardDir := filepath.Join(tornDir, "shard-0000")
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		tornPath := filepath.Join(shardDir, "wal.log")
		if err := os.WriteFile(tornPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(Options{Dir: tornDir, CompactInterval: -1})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		got := collect(t, st2)
		if len(got) != k-1 {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), k-1)
		}
		for _, p := range got {
			want := testRecord(uint64(p.ID), b)
			if p.S != want.S || !p.Subset.Equal(b) {
				t.Fatalf("cut=%d: recovered corrupted record %+v", cut, p)
			}
		}
		// The torn tail must be physically gone so appends restart clean.
		if info, err := os.Stat(tornPath); err != nil || info.Size() != lastStart {
			t.Fatalf("cut=%d: wal not truncated to %d (size %v, err %v)", cut, lastStart, info.Size(), err)
		}
		// And the recovered log must accept new records.
		if err := st2.Append(testRecord(k+1, b)); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if got := collect(t, st2); len(got) != k {
			t.Fatalf("cut=%d: after recovery append, %d records, want %d", cut, len(got), k)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALBitFlipStopsReplay verifies a checksum-violating byte anywhere in
// the final record ends replay at the last good record.
func TestWALBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	b := bitvec.MustSubset(1)
	st, err := Open(Options{Dir: dir, Shards: 1, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	var lastStart int64
	for i := uint64(1); i <= 3; i++ {
		lastStart = st.shards[0].wal.size
		if err := st.Append(testRecord(i, b)); err != nil {
			t.Fatal(err)
		}
	}
	walPath := st.shards[0].wal.path
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[lastStart+walHeaderSize] ^= 0xFF // corrupt the last record's payload
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	records, size, err := replayWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || size != lastStart {
		t.Fatalf("replay after bit flip: %d records ending at %d, want 2 ending at %d", len(records), size, lastStart)
	}
}
