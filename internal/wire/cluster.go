package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"sketchprivacy/internal/bitvec"
)

// ProtocolVersion is the wire protocol generation.  A peer speaking a
// different version fails the hello handshake loudly instead of producing a
// decode panic or a silently wrong estimate.  Bump it whenever a frame
// encoding changes incompatibly.
//
// v2 added ring epochs to Filter and PartialResult plus the rebalance
// transfer opcodes, all of which change router↔node frame layouts.
//
// v3 added the batched planQuery/planResult opcode pair: a router pushes a
// whole compiled query plan to each node in one frame and merges per-entry
// counters, so multi-evaluation estimators cost one fan-out round trip.
//
// v4 hardened the wire against the uglier middle of the failure space:
// every frame header carries a CRC32-C of its payload (in-flight byte
// corruption fails loudly instead of merging flipped counters into an
// estimate), and ownership filters carry an end-to-end deadline budget
// plus an optional failed-node set, so nodes abandon work their router
// stopped waiting for and a fan-out can re-ask only a dead replica's
// slice of the user space.
//
// v5 added the tenant domain restriction to ownership filters
// (Filter.DomainBits/Filter.Domain): the HTTP gateway assigns each tenant
// a disjoint high-bit prefix of the user-id space, and a query carrying a
// domain counts only the records inside that prefix — the mechanism that
// keeps one tenant's estimates from ever touching another tenant's
// sketches on a shared cluster.
const ProtocolVersion byte = 5

// Cluster message types (the scatter-gather data plane between a
// sketchrouter and its nodes, plus the hello/ping control frames every
// client uses).
const (
	// TypeHello opens a connection: the payload is the sender's protocol
	// version byte.  The receiver answers TypeHelloAck with its own version
	// or TypeError on a mismatch.
	TypeHello byte = 8
	// TypeHelloAck acknowledges a hello; the payload is the receiver's
	// protocol version byte.
	TypeHelloAck byte = 9
	// TypePing requests a liveness report; the payload is empty.
	TypePing byte = 10
	// TypePong answers a ping with a short human-readable status text
	// (nodes report "ok version=V sketches=N"; a router reports its ring,
	// per-node liveness and ownership spans).
	TypePong byte = 11
	// TypePartialQuery asks a node for the raw Algorithm 2 counters of one
	// evaluation, restricted to the records the node owns under the query's
	// ownership filter (see Filter).
	TypePartialQuery byte = 12
	// TypePartialResult carries the counters back.
	TypePartialResult byte = 13
)

// Partial query kinds.
const (
	// PartialFraction asks for the Algorithm 2 raw counters of one
	// (subset, value) evaluation: match count and record count.
	PartialFraction byte = 1
	// PartialHistogram asks for the Appendix F match histogram over the
	// node's users that sketched every sub-query subset.
	PartialHistogram byte = 2
	// PartialSubsetRecords asks how many records the node owns for one
	// subset (the distributed tab.CountForSubset).
	PartialSubsetRecords byte = 3
	// PartialTotalRecords asks how many records the node owns in total
	// (the distributed tab.Len).
	PartialTotalRecords byte = 4
)

// Decode guards: a hostile count field must not drive a giant allocation
// before the payload length check catches it.
const (
	maxFilterNodes = 1 << 12
	maxSubQueries  = 1 << 8
	maxHistBins    = maxSubQueries + 1
)

// EncodeHello returns the bare hello payload for this binary's version.
func EncodeHello() []byte { return []byte{ProtocolVersion} }

// EncodeHelloEpoch returns a hello payload carrying a ring epoch alongside
// the version byte.  A router announces its current epoch this way on every
// fresh connection, so a node learns the cluster generation at handshake
// time rather than only from the first filtered query.
func EncodeHelloEpoch(epoch uint64) []byte {
	out := make([]byte, 9)
	out[0] = ProtocolVersion
	binary.BigEndian.PutUint64(out[1:], epoch)
	return out
}

// DecodeHello parses a hello (or hello-ack) payload into the peer's
// version.  Both the bare one-byte form and the nine-byte epoch-carrying
// form are accepted.
func DecodeHello(b []byte) (byte, error) {
	v, _, _, err := ParseHello(b)
	return v, err
}

// ParseHello parses a hello payload into the peer's version and, when the
// nine-byte form was sent, its ring epoch.
func ParseHello(b []byte) (version byte, epoch uint64, hasEpoch bool, err error) {
	switch len(b) {
	case 1:
		return b[0], 0, false, nil
	case 9:
		return b[0], binary.BigEndian.Uint64(b[1:]), true, nil
	default:
		return 0, 0, false, fmt.Errorf("%w: hello payload must be the version byte or version byte + 8-byte epoch, got %d bytes", ErrCorrupt, len(b))
	}
}

// EncodePingEpoch returns a ping payload carrying the sender's ring epoch.
// A bare (empty) ping remains valid: epoch exchange is an extension, not a
// requirement, so pre-cluster tools keep working.
func EncodePingEpoch(epoch uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, epoch)
}

// ParsePing parses a ping payload: empty pings carry no epoch.
func ParsePing(b []byte) (epoch uint64, hasEpoch bool, err error) {
	switch len(b) {
	case 0:
		return 0, false, nil
	case 8:
		return binary.BigEndian.Uint64(b), true, nil
	default:
		return 0, false, fmt.Errorf("%w: ping payload must be empty or an 8-byte epoch, got %d bytes", ErrCorrupt, len(b))
	}
}

// StaleEpochMarker is the substring every stale-epoch refusal carries, so
// the router can recognise the refusal and retry the fan-out under a fresh
// ring snapshot instead of aborting the query.
const StaleEpochMarker = "stale ring epoch"

// StaleEpochError renders the refusal a node answers an outdated partial
// query with.
func StaleEpochError(queryEpoch, nodeEpoch uint64) error {
	return fmt.Errorf("wire: %s: query was built for ring epoch %d but this node has observed epoch %d — refusing to contribute a partial computed under a superseded ring", StaleEpochMarker, queryEpoch, nodeEpoch)
}

// IsStaleEpoch reports whether an error message carries the stale-epoch
// refusal marker.
func IsStaleEpoch(msg string) bool { return strings.Contains(msg, StaleEpochMarker) }

// OverloadMarker is the substring a node's load-shedding refusal carries.
// Like the stale-epoch refusal it names a transient condition, not a
// property of the query, so a router treats it as retryable — the next
// fan-out attempt may land after the burst drained — instead of aborting
// the query the way it does for semantic errors.
const OverloadMarker = "node overloaded"

// OverloadError renders the refusal a node sheds load with when its
// in-flight frame guard is saturated.
func OverloadError(inflight int) error {
	return fmt.Errorf("wire: %s: %d frames already executing — shedding this request instead of queueing unboundedly", OverloadMarker, inflight)
}

// IsOverload reports whether an error message carries the load-shedding
// marker.
func IsOverload(msg string) bool { return strings.Contains(msg, OverloadMarker) }

// IsChecksum reports whether an error message carries the frame-checksum
// refusal: the peer received a corrupted frame.  Corruption is a
// transport-level fault, not a property of the query, so a router treats
// the refusal as retryable — the resend travels on a fresh connection.
func IsChecksum(msg string) bool { return strings.Contains(msg, ErrFrameChecksum.Error()) }

// DeadlineMarker is the substring a node's deadline-abandonment error
// carries: the query's end-to-end budget expired mid-execution, so the
// node stopped computing a partial the router has already given up on.
const DeadlineMarker = "deadline budget exhausted"

// DeadlineError renders the abandonment a node answers (best-effort — the
// router has usually hung up) when a query's budget expires mid-plan.
func DeadlineError(budget uint32) error {
	return fmt.Errorf("wire: %s: the query's %dms end-to-end budget expired mid-execution; abandoning the plan", DeadlineMarker, budget)
}

// CheckHello validates an incoming hello payload against this binary's
// version, returning the error the server should refuse the connection
// with.  Serving side: after sending the refusal, close the connection —
// an incompatible peer's subsequent frames would decode as garbage.
func CheckHello(payload []byte) error {
	v, err := DecodeHello(payload)
	if err != nil {
		return err
	}
	if v != ProtocolVersion {
		return fmt.Errorf("wire: protocol version mismatch: peer speaks v%d, this binary speaks v%d", v, ProtocolVersion)
	}
	return nil
}

// ClientHandshake performs the dialing side of the version handshake on a
// fresh connection: send the hello, require a matching hello-ack.  A peer
// speaking a different version — or one too old to know the hello opcode,
// which answers with its unknown-message error — fails loudly here
// instead of producing a decode error or a garbage estimate later.  The
// server daemon, the cluster router and the command-line client all share
// this one implementation.
func ClientHandshake(rw io.ReadWriter) error {
	return clientHandshake(rw, EncodeHello())
}

// ClientHandshakeEpoch is ClientHandshake with the sender's ring epoch in
// the hello payload; the cluster router uses it so every node it connects
// to learns the current ring generation before the first query arrives.
func ClientHandshakeEpoch(rw io.ReadWriter, epoch uint64) error {
	return clientHandshake(rw, EncodeHelloEpoch(epoch))
}

func clientHandshake(rw io.ReadWriter, hello []byte) error {
	if err := WriteFrame(rw, TypeHello, hello); err != nil {
		return fmt.Errorf("wire: sending hello: %w", err)
	}
	msgType, payload, err := ReadFrame(rw)
	if err != nil {
		return fmt.Errorf("wire: reading hello reply: %w", err)
	}
	switch msgType {
	case TypeHelloAck:
		v, err := DecodeHello(payload)
		if err != nil {
			return err
		}
		if v != ProtocolVersion {
			return fmt.Errorf("wire: protocol version mismatch: peer speaks v%d, this binary speaks v%d", v, ProtocolVersion)
		}
		return nil
	case TypeError:
		return fmt.Errorf("wire: handshake refused: %s", payload)
	default:
		return fmt.Errorf("wire: hello answered with message type %d — peer speaks an incompatible wire protocol version", msgType)
	}
}

// Filter restricts a partial query to the records its target node owns, so
// replicated records are counted exactly once across a fan-out.  The node
// rebuilds the cluster's consistent-hash ring from Nodes and VNodes and
// includes a record only when it is the first *live* node on the record's
// preference walk — with every acknowledged record on RF replicas and at
// most RF−1 nodes down, exactly one live node answers for each record.
type Filter struct {
	// Epoch is the ring generation this filter was built from.  A node
	// that has observed a newer epoch refuses the query (StaleEpochError)
	// instead of contributing a partial computed under a superseded ring;
	// zero means "no epoch" and disables the check (single-node tools).
	Epoch uint64
	// Nodes is the full ring membership (placement depends on it, not on
	// the live set).
	Nodes []string
	// VNodes is the virtual-node count per member.
	VNodes uint32
	// Self names the node this query is addressed to.
	Self string
	// Live lists the members the router currently considers alive.
	Live []string
	// Budget is the query's remaining end-to-end deadline in milliseconds
	// at the moment the router encoded the request; zero means no budget.
	// A node bounds its plan execution by it, so work the router has
	// stopped waiting for is abandoned instead of burning a core for a
	// reply nobody reads.
	Budget uint32
	// DomainBits restricts the evaluation to one user-id domain: a record
	// is counted only when the top DomainBits bits of its user id equal
	// Domain.  Zero disables the restriction (the whole id space).  The
	// HTTP gateway derives each tenant's Domain from the master generator
	// key, so the restriction — composed with the ownership filter — is
	// what partitions a shared cluster into cryptographically disjoint
	// per-tenant PRF domains.
	DomainBits uint8
	// Domain is the required high-bit prefix value, right-aligned (the
	// record check is id >> (64-DomainBits) == Domain).
	Domain uint64
	// Failed names live-set members that stopped answering mid-fan-out.
	// When non-empty the filter selects the recovery slice: records whose
	// first live owner under Live is in Failed, re-partitioned among the
	// survivors by the next step of the preference walk (Self answers for
	// the ones it now leads).  The survivors' recovery slices together
	// cover exactly the failed nodes' original slices, so merging them
	// with the survivors' original answers stays bit-identical — the
	// filter-partition argument, applied twice.
	Failed []string
}

// PartialQuery is one scatter-gather request: which counters to compute and
// the ownership filter to compute them under (nil filter: all records).
type PartialQuery struct {
	Kind   byte
	Filter *Filter
	// Subset and Value describe a PartialFraction; Subset alone describes a
	// PartialSubsetRecords.
	Subset bitvec.Subset
	Value  bitvec.Vector
	// Subs describes a PartialHistogram.
	Subs []Query
}

// PartialResult carries the raw counters back.  Integers merge exactly:
// summing Hits/Records (or Hist/Users bin-wise) over disjoint record sets
// reproduces the counters a single node holding the union would compute.
type PartialResult struct {
	Kind byte
	// Epoch echoes the query filter's ring epoch, so the router can refuse
	// to merge partials computed under different ring generations.
	Epoch   uint64
	Hits    uint64
	Records uint64
	Users   uint64
	Hist    []uint64
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte { return appendBytes(dst, []byte(s)) }

// readString consumes a length-prefixed string.
func readString(src []byte) (string, []byte, error) {
	b, rest, err := readBytes(src)
	return string(b), rest, err
}

// appendFilter appends a presence byte and, when present, the filter.
func appendFilter(dst []byte, f *Filter) []byte {
	if f == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.BigEndian.AppendUint64(dst, f.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, f.VNodes)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Nodes)))
	for _, n := range f.Nodes {
		dst = appendString(dst, n)
	}
	dst = appendString(dst, f.Self)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Live)))
	for _, n := range f.Live {
		dst = appendString(dst, n)
	}
	dst = binary.BigEndian.AppendUint32(dst, f.Budget)
	dst = append(dst, f.DomainBits)
	dst = binary.BigEndian.AppendUint64(dst, f.Domain)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Failed)))
	for _, n := range f.Failed {
		dst = appendString(dst, n)
	}
	return dst
}

// readFilter reverses appendFilter.
func readFilter(src []byte) (*Filter, []byte, error) {
	if len(src) < 1 {
		return nil, nil, ErrCorrupt
	}
	present := src[0]
	src = src[1:]
	switch present {
	case 0:
		return nil, src, nil
	case 1:
	default:
		return nil, nil, fmt.Errorf("%w: filter presence byte %d", ErrCorrupt, present)
	}
	if len(src) < 16 {
		return nil, nil, ErrCorrupt
	}
	f := &Filter{Epoch: binary.BigEndian.Uint64(src), VNodes: binary.BigEndian.Uint32(src[8:])}
	nNodes := binary.BigEndian.Uint32(src[12:])
	src = src[16:]
	if nNodes > maxFilterNodes {
		return nil, nil, fmt.Errorf("%w: filter claims %d ring members", ErrCorrupt, nNodes)
	}
	var err error
	var s string
	for i := uint32(0); i < nNodes; i++ {
		if s, src, err = readString(src); err != nil {
			return nil, nil, err
		}
		f.Nodes = append(f.Nodes, s)
	}
	if f.Self, src, err = readString(src); err != nil {
		return nil, nil, err
	}
	if len(src) < 4 {
		return nil, nil, ErrCorrupt
	}
	nLive := binary.BigEndian.Uint32(src)
	src = src[4:]
	if nLive > maxFilterNodes {
		return nil, nil, fmt.Errorf("%w: filter claims %d live members", ErrCorrupt, nLive)
	}
	for i := uint32(0); i < nLive; i++ {
		if s, src, err = readString(src); err != nil {
			return nil, nil, err
		}
		f.Live = append(f.Live, s)
	}
	if len(src) < 17 {
		return nil, nil, ErrCorrupt
	}
	f.Budget = binary.BigEndian.Uint32(src)
	f.DomainBits = src[4]
	f.Domain = binary.BigEndian.Uint64(src[5:])
	nFailed := binary.BigEndian.Uint32(src[13:])
	src = src[17:]
	if f.DomainBits > 63 {
		return nil, nil, fmt.Errorf("%w: filter domain of %d bits", ErrCorrupt, f.DomainBits)
	}
	if f.DomainBits == 0 && f.Domain != 0 {
		return nil, nil, fmt.Errorf("%w: filter domain value without domain bits", ErrCorrupt)
	}
	if f.DomainBits > 0 && f.Domain>>f.DomainBits != 0 {
		return nil, nil, fmt.Errorf("%w: filter domain value wider than %d bits", ErrCorrupt, f.DomainBits)
	}
	if nFailed > maxFilterNodes {
		return nil, nil, fmt.Errorf("%w: filter claims %d failed members", ErrCorrupt, nFailed)
	}
	for i := uint32(0); i < nFailed; i++ {
		if s, src, err = readString(src); err != nil {
			return nil, nil, err
		}
		f.Failed = append(f.Failed, s)
	}
	return f, src, nil
}

// EncodePartialQuery serializes a partial query.
func EncodePartialQuery(q PartialQuery) []byte {
	out := make([]byte, 0, 128)
	out = append(out, q.Kind)
	out = appendFilter(out, q.Filter)
	switch q.Kind {
	case PartialFraction:
		out = appendBytes(out, q.Subset.Tag())
		out = appendBytes(out, q.Value.Bytes())
	case PartialHistogram:
		out = binary.BigEndian.AppendUint32(out, uint32(len(q.Subs)))
		for _, s := range q.Subs {
			out = appendBytes(out, s.Subset.Tag())
			out = appendBytes(out, s.Value.Bytes())
		}
	case PartialSubsetRecords:
		out = appendBytes(out, q.Subset.Tag())
	case PartialTotalRecords:
	}
	return out
}

// readSubsetValue consumes one (subset tag, value bytes) pair.
func readSubsetValue(src []byte) (bitvec.Subset, bitvec.Vector, []byte, error) {
	tag, src, err := readBytes(src)
	if err != nil {
		return bitvec.Subset{}, bitvec.Vector{}, nil, err
	}
	subset, err := bitvec.ParseTag(tag)
	if err != nil {
		return bitvec.Subset{}, bitvec.Vector{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	vb, src, err := readBytes(src)
	if err != nil {
		return bitvec.Subset{}, bitvec.Vector{}, nil, err
	}
	value, err := bitvec.ParseBytes(vb)
	if err != nil {
		return bitvec.Subset{}, bitvec.Vector{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return subset, value, src, nil
}

// DecodePartialQuery reverses EncodePartialQuery.
func DecodePartialQuery(b []byte) (PartialQuery, error) {
	if len(b) < 1 {
		return PartialQuery{}, ErrCorrupt
	}
	q := PartialQuery{Kind: b[0]}
	rest := b[1:]
	var err error
	if q.Filter, rest, err = readFilter(rest); err != nil {
		return PartialQuery{}, err
	}
	switch q.Kind {
	case PartialFraction:
		if q.Subset, q.Value, rest, err = readSubsetValue(rest); err != nil {
			return PartialQuery{}, err
		}
	case PartialHistogram:
		if len(rest) < 4 {
			return PartialQuery{}, ErrCorrupt
		}
		k := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		if k > maxSubQueries {
			return PartialQuery{}, fmt.Errorf("%w: histogram query claims %d sub-queries", ErrCorrupt, k)
		}
		for i := uint32(0); i < k; i++ {
			var sub Query
			if sub.Subset, sub.Value, rest, err = readSubsetValue(rest); err != nil {
				return PartialQuery{}, err
			}
			q.Subs = append(q.Subs, sub)
		}
	case PartialSubsetRecords:
		var tag []byte
		if tag, rest, err = readBytes(rest); err != nil {
			return PartialQuery{}, err
		}
		if q.Subset, err = bitvec.ParseTag(tag); err != nil {
			return PartialQuery{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	case PartialTotalRecords:
	default:
		return PartialQuery{}, fmt.Errorf("%w: unknown partial query kind %d", ErrCorrupt, q.Kind)
	}
	if len(rest) != 0 {
		return PartialQuery{}, ErrCorrupt
	}
	return q, nil
}

// EncodePartialResult serializes a partial result.
func EncodePartialResult(r PartialResult) []byte {
	out := make([]byte, 0, 40+8*len(r.Hist))
	out = append(out, r.Kind)
	out = binary.BigEndian.AppendUint64(out, r.Epoch)
	switch r.Kind {
	case PartialFraction:
		out = binary.BigEndian.AppendUint64(out, r.Hits)
		out = binary.BigEndian.AppendUint64(out, r.Records)
	case PartialHistogram:
		out = binary.BigEndian.AppendUint64(out, r.Users)
		out = binary.BigEndian.AppendUint32(out, uint32(len(r.Hist)))
		for _, c := range r.Hist {
			out = binary.BigEndian.AppendUint64(out, c)
		}
	case PartialSubsetRecords, PartialTotalRecords:
		out = binary.BigEndian.AppendUint64(out, r.Records)
	}
	return out
}

// DecodePartialResult reverses EncodePartialResult.
func DecodePartialResult(b []byte) (PartialResult, error) {
	if len(b) < 9 {
		return PartialResult{}, ErrCorrupt
	}
	r := PartialResult{Kind: b[0], Epoch: binary.BigEndian.Uint64(b[1:])}
	rest := b[9:]
	switch r.Kind {
	case PartialFraction:
		if len(rest) != 16 {
			return PartialResult{}, ErrCorrupt
		}
		r.Hits = binary.BigEndian.Uint64(rest)
		r.Records = binary.BigEndian.Uint64(rest[8:])
	case PartialHistogram:
		if len(rest) < 12 {
			return PartialResult{}, ErrCorrupt
		}
		r.Users = binary.BigEndian.Uint64(rest)
		bins := binary.BigEndian.Uint32(rest[8:])
		rest = rest[12:]
		if bins > maxHistBins || uint32(len(rest)) != 8*bins {
			return PartialResult{}, fmt.Errorf("%w: histogram result with %d bins in %d bytes", ErrCorrupt, bins, len(rest))
		}
		r.Hist = make([]uint64, bins)
		for i := range r.Hist {
			r.Hist[i] = binary.BigEndian.Uint64(rest[8*i:])
		}
	case PartialSubsetRecords, PartialTotalRecords:
		if len(rest) != 8 {
			return PartialResult{}, ErrCorrupt
		}
		r.Records = binary.BigEndian.Uint64(rest)
	default:
		return PartialResult{}, fmt.Errorf("%w: unknown partial result kind %d", ErrCorrupt, r.Kind)
	}
	return r, nil
}
