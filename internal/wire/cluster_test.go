package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"sketchprivacy/internal/bitvec"
)

func TestHelloRoundTrip(t *testing.T) {
	v, err := DecodeHello(EncodeHello())
	if err != nil {
		t.Fatal(err)
	}
	if v != ProtocolVersion {
		t.Fatalf("hello carries version %d, want %d", v, ProtocolVersion)
	}
	for _, bad := range [][]byte{nil, {}, {1, 2}} {
		if _, err := DecodeHello(bad); err == nil {
			t.Fatalf("DecodeHello accepted %x", bad)
		}
	}
}

func testFilter() *Filter {
	return &Filter{
		Nodes:  []string{"10.0.0.1:7071", "10.0.0.2:7071", "10.0.0.3:7071"},
		VNodes: 64,
		Self:   "10.0.0.2:7071",
		Live:   []string{"10.0.0.2:7071", "10.0.0.3:7071"},
	}
}

func TestPartialQueryRoundTrip(t *testing.T) {
	subset := bitvec.MustSubset(0, 2, 5)
	value := bitvec.MustFromString("101")
	recovery := testFilter()
	recovery.Budget = 4500
	recovery.Failed = []string{"10.0.0.3:7071"}
	cases := []PartialQuery{
		{Kind: PartialFraction, Subset: subset, Value: value},
		{Kind: PartialFraction, Filter: testFilter(), Subset: subset, Value: value},
		{Kind: PartialFraction, Filter: recovery, Subset: subset, Value: value},
		{Kind: PartialHistogram, Filter: testFilter(), Subs: []Query{
			{Subset: bitvec.MustSubset(0), Value: bitvec.MustFromString("1")},
			{Subset: bitvec.MustSubset(3), Value: bitvec.MustFromString("0")},
		}},
		{Kind: PartialSubsetRecords, Filter: testFilter(), Subset: subset},
		{Kind: PartialTotalRecords},
		{Kind: PartialTotalRecords, Filter: testFilter()},
	}
	for _, q := range cases {
		enc := EncodePartialQuery(q)
		dec, err := DecodePartialQuery(enc)
		if err != nil {
			t.Fatalf("kind %d: %v", q.Kind, err)
		}
		if !reflect.DeepEqual(normalizeQuery(q), normalizeQuery(dec)) {
			t.Fatalf("kind %d: round trip mismatch:\n in %+v\nout %+v", q.Kind, q, dec)
		}
		if got := EncodePartialQuery(dec); !bytes.Equal(got, enc) {
			t.Fatalf("kind %d: encoding not canonical", q.Kind)
		}
	}
}

// normalizeQuery maps a partial query to comparable form (subset and
// vector values compare by their canonical encodings).
func normalizeQuery(q PartialQuery) string { return string(EncodePartialQuery(q)) }

func TestPartialResultRoundTrip(t *testing.T) {
	cases := []PartialResult{
		{Kind: PartialFraction, Hits: 123, Records: 456},
		{Kind: PartialHistogram, Users: 99, Hist: []uint64{1, 2, 3}},
		{Kind: PartialHistogram, Users: 0, Hist: []uint64{}},
		{Kind: PartialSubsetRecords, Records: 7},
		{Kind: PartialTotalRecords, Records: 0},
	}
	for _, r := range cases {
		enc := EncodePartialResult(r)
		dec, err := DecodePartialResult(enc)
		if err != nil {
			t.Fatalf("kind %d: %v", r.Kind, err)
		}
		if got := EncodePartialResult(dec); !bytes.Equal(got, enc) {
			t.Fatalf("kind %d: encoding not canonical", r.Kind)
		}
		if dec.Hits != r.Hits || dec.Records != r.Records || dec.Users != r.Users || len(dec.Hist) != len(r.Hist) {
			t.Fatalf("kind %d: round trip mismatch: %+v vs %+v", r.Kind, r, dec)
		}
	}
}

func TestPartialDecodeRejectsHostileInput(t *testing.T) {
	// Unknown kinds.
	if _, err := DecodePartialQuery([]byte{99, 0}); err == nil {
		t.Fatal("unknown query kind accepted")
	}
	if _, err := DecodePartialResult([]byte{99}); err == nil {
		t.Fatal("unknown result kind accepted")
	}
	// Trailing bytes after a valid query.
	enc := EncodePartialQuery(PartialQuery{Kind: PartialTotalRecords})
	if _, err := DecodePartialQuery(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A filter claiming 2^32−1 ring members must fail cleanly before any
	// giant allocation.
	hostile := []byte{PartialTotalRecords, 1}
	hostile = binary.BigEndian.AppendUint32(hostile, 64)
	hostile = binary.BigEndian.AppendUint32(hostile, ^uint32(0))
	if _, err := DecodePartialQuery(hostile); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile member count: got %v, want ErrCorrupt", err)
	}
	// A histogram result whose bin count disagrees with the payload.
	bad := []byte{PartialHistogram}
	bad = binary.BigEndian.AppendUint64(bad, 5)
	bad = binary.BigEndian.AppendUint32(bad, 1000)
	if _, err := DecodePartialResult(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile bin count: got %v, want ErrCorrupt", err)
	}
}
