package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

// FuzzDecode drives every wire decoder with arbitrary bytes.  The
// contract under test: a decoder returns an error on malformed input —
// it never panics — and an input it accepts is canonical, meaning
// re-encoding the decoded value reproduces the input bit for bit.  The
// canonical-form property is what lets the store deduplicate records and
// the PRF treat encodings as identity: two equal objects must never have
// two encodings.
func FuzzDecode(f *testing.F) {
	// Valid frames seed the corpus so mutation starts near the format.
	pub := sketch.Published{
		ID:     77,
		Subset: bitvec.MustSubset(0, 2, 5),
		S:      sketch.Sketch{Key: 123, Length: 10},
	}
	f.Add(EncodePublished(pub))
	f.Add(EncodeQuery(Query{Subset: bitvec.MustSubset(1, 3), Value: bitvec.MustFromString("10")}))
	f.Add(EncodeResult(Result{Fraction: 0.25, Raw: 0.3, Users: 1000}))
	f.Add(EncodeStats(Stats{Params: "p=0.3", P: 0.3, SketchBits: 10, Sketches: 1}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	// Regression seeds: 64-bit length fields crafted so the size
	// arithmetic wraps (found by this fuzzer; fixed in bitvec.ParseTag
	// and bitvec.ParseBytes).
	tornTag := append(binary.BigEndian.AppendUint64(nil, 0x2000000000000001), make([]byte, 8)...)
	f.Add(append(append(make([]byte, 8), encodeLenPrefixed(tornTag)...), encodeLenPrefixed([]byte{10, 0, 1})...))
	wrapVec := binary.BigEndian.AppendUint64(nil, ^uint64(62))
	f.Add(append(encodeLenPrefixed(binary.BigEndian.AppendUint64(nil, 0)), encodeLenPrefixed(wrapVec)...))
	// Cluster frames: a filtered partial query and a histogram result.
	f.Add(EncodePartialQuery(PartialQuery{
		Kind: PartialFraction,
		Filter: &Filter{
			Nodes:  []string{"a:1", "b:1"},
			VNodes: 8,
			Self:   "a:1",
			Live:   []string{"a:1", "b:1"},
		},
		Subset: bitvec.MustSubset(1, 3),
		Value:  bitvec.MustFromString("10"),
	}))
	f.Add(EncodePartialResult(PartialResult{Kind: PartialHistogram, Users: 10, Hist: []uint64{4, 5, 1}}))
	f.Add(EncodeHello())
	// v3 plan frames: a batched multi-entry query and its result.
	f.Add(EncodePlanQuery(PlanQuery{
		Filter: &Filter{Epoch: 3, Nodes: []string{"a:1", "b:1"}, VNodes: 8, Self: "b:1", Live: []string{"a:1", "b:1"}},
		Fractions: []Query{
			{Subset: bitvec.MustSubset(0), Value: bitvec.MustFromString("1")},
			{Subset: bitvec.MustSubset(0, 1), Value: bitvec.MustFromString("10")},
		},
		Hists: []PlanHistQuery{
			{Subs: []Query{{Subset: bitvec.MustSubset(2), Value: bitvec.MustFromString("1")}}},
			{Subs: []Query{{Subset: bitvec.MustSubset(2), Value: bitvec.MustFromString("1")}, {Subset: bitvec.MustSubset(4), Value: bitvec.MustFromString("0")}}, Guard: 1, HasGuard: true},
		},
		Counts: []bitvec.Subset{bitvec.MustSubset(0)},
		Total:  true,
	}))
	f.Add(EncodePlanResult(PlanResult{
		Epoch:     3,
		Fractions: []PlanFraction{{Hits: 4, Records: 10}, {Hits: 1, Records: 10}},
		Hists:     []PlanHist{{Users: 10, Hist: []uint64{4, 5, 1}}},
		Counts:    []uint64{10},
		Total:     20,
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := DecodePublished(data); err == nil {
			if got := EncodePublished(p); !bytes.Equal(got, data) {
				t.Fatalf("DecodePublished accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if q, err := DecodeQuery(data); err == nil {
			if got := EncodeQuery(q); !bytes.Equal(got, data) {
				t.Fatalf("DecodeQuery accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if r, err := DecodeResult(data); err == nil {
			// Float64bits round-trips every payload including NaNs, so
			// canonical form holds here too.
			if got := EncodeResult(r); !bytes.Equal(got, data) {
				t.Fatalf("DecodeResult accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if q, err := DecodePartialQuery(data); err == nil {
			if got := EncodePartialQuery(q); !bytes.Equal(got, data) {
				t.Fatalf("DecodePartialQuery accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if r, err := DecodePartialResult(data); err == nil {
			if got := EncodePartialResult(r); !bytes.Equal(got, data) {
				t.Fatalf("DecodePartialResult accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if q, err := DecodePlanQuery(data); err == nil {
			if got := EncodePlanQuery(q); !bytes.Equal(got, data) {
				t.Fatalf("DecodePlanQuery accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if r, err := DecodePlanResult(data); err == nil {
			if got := EncodePlanResult(r); !bytes.Equal(got, data) {
				t.Fatalf("DecodePlanResult accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		// Stats is JSON: no canonical-form guarantee, but still no panic.
		_, _ = DecodeStats(data)
		_, _ = DecodeHello(data)
		// And the frame reader itself must tolerate arbitrary streams.
		_, _, _ = ReadFrame(bytes.NewReader(data))
	})
}

// encodeLenPrefixed mirrors the internal appendBytes framing for seed
// construction.
func encodeLenPrefixed(b []byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(b)))
	return append(out, b...)
}

// FuzzTransferDecode drives the rebalance transfer decoders — snapshot
// reads/batches, transfer pushes/acks and the epoch-carrying hello and
// ping payloads — with arbitrary bytes.  Same contract as FuzzDecode:
// malformed input errors (never panics), and accepted input is canonical
// (re-encoding reproduces it bit for bit).  The CRC trailer makes the
// canonical property trivial for the framed batches, but the fuzzer still
// guards the count fields and record sub-decoders.
func FuzzTransferDecode(f *testing.F) {
	records := []sketch.Published{
		{ID: 9, Subset: bitvec.MustSubset(0, 3), S: sketch.Sketch{Key: 4, Length: 10}},
		{ID: 10, Subset: bitvec.MustSubset(1), S: sketch.Sketch{Key: 0, Length: 12}},
	}
	f.Add(EncodeSnapshotRead(SnapshotRead{Cursor: 7, Max: 256}))
	f.Add(EncodeSnapshotBatch(SnapshotBatch{Next: 8, Done: true, Records: records}))
	f.Add(EncodeTransferPush(TransferPush{Epoch: 3, Records: records}))
	f.Add(EncodeTransferAck(TransferAck{Applied: 2}))
	f.Add(EncodeHelloEpoch(12))
	f.Add(EncodePingEpoch(12))
	// A batch whose count field promises far more records than the payload
	// holds, wrapped in a valid CRC so the count guard (not the checksum)
	// is what must catch it.
	hostile := binary.BigEndian.AppendUint64(nil, 0)
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF)
	f.Add(appendCRC(hostile))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeSnapshotRead(data); err == nil {
			if got := EncodeSnapshotRead(r); !bytes.Equal(got, data) {
				t.Fatalf("DecodeSnapshotRead accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if sb, err := DecodeSnapshotBatch(data); err == nil {
			if got := EncodeSnapshotBatch(sb); !bytes.Equal(got, data) {
				t.Fatalf("DecodeSnapshotBatch accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if tp, err := DecodeTransferPush(data); err == nil {
			if got := EncodeTransferPush(tp); !bytes.Equal(got, data) {
				t.Fatalf("DecodeTransferPush accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		if a, err := DecodeTransferAck(data); err == nil {
			if got := EncodeTransferAck(a); !bytes.Equal(got, data) {
				t.Fatalf("DecodeTransferAck accepted non-canonical input:\n in %x\nout %x", data, got)
			}
		}
		// The extended hello/ping payload parsers must never panic; their
		// encodings are canonical per form (bare vs epoch-carrying).
		if v, epoch, has, err := ParseHello(data); err == nil && has {
			if got := EncodeHelloEpoch(epoch); v == ProtocolVersion && !bytes.Equal(got, data) {
				t.Fatalf("ParseHello accepted non-canonical epoch hello: in %x out %x", data, got)
			}
		}
		if epoch, has, err := ParsePing(data); err == nil && has {
			if got := EncodePingEpoch(epoch); !bytes.Equal(got, data) {
				t.Fatalf("ParsePing accepted non-canonical epoch ping: in %x out %x", data, got)
			}
		}
	})
}
