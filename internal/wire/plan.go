package wire

import (
	"encoding/binary"
	"fmt"

	"sketchprivacy/internal/bitvec"
)

// Protocol v3: batched plan push-down.  A router compiles an estimator's
// entire evaluation list — every (subset, value) fraction, every match
// histogram, every record-count lookup — into one PlanQuery frame and fans
// it out once; each node answers every entry from a single pass over its
// owned records and the router merges the per-entry counters exactly.  A
// k-term interval decomposition or a many-path decision tree therefore
// costs one round trip instead of one per entry.
const (
	// TypePlanQuery asks a node to execute a whole query plan under the
	// query's ownership filter, answering every entry in one reply.
	TypePlanQuery byte = 21
	// TypePlanResult carries the per-entry counters back, positionally
	// aligned with the plan that was sent.
	TypePlanResult byte = 22
)

// Plan size limits.  They bound hostile decode allocations and define the
// largest plan a single fan-out may carry; the router pre-checks outgoing
// plans against them so an oversized (legitimate) plan fails with a clear
// "split the query" error instead of a node-side corrupt-payload refusal.
const (
	// MaxPlanFractions bounds a plan's fraction entries.
	MaxPlanFractions = 1 << 16
	// MaxPlanHists bounds a plan's histogram entries.
	MaxPlanHists = 1 << 12
	// MaxPlanCounts bounds a plan's record-count entries.
	MaxPlanCounts = 1 << 12
	// MaxPlanHistSubQueries bounds one histogram entry's sub-queries, the
	// same cap the v2 partial-histogram decoder enforces.
	MaxPlanHistSubQueries = maxSubQueries
)

// PlanQuery is one batched scatter-gather request: the complete evaluation
// list of a compiled query plan plus the ownership filter to execute it
// under (nil filter: all records).
type PlanQuery struct {
	Filter *Filter
	// Fractions lists the (subset, value) Algorithm 2 evaluations.
	Fractions []Query
	// Hists lists the Appendix F match-histogram evaluations.
	Hists []PlanHistQuery
	// Counts lists the subsets whose record counts the plan needs.
	Counts []bitvec.Subset
	// Total asks for the all-subsets record count.
	Total bool
}

// PlanHistQuery is one histogram evaluation of a plan: its sub-queries
// and, when HasGuard, the index of the fraction entry whose non-empty
// result lets the node skip this histogram (the conjunction estimator's
// unused gluing fallback — see query.HistogramEval).
type PlanHistQuery struct {
	Subs     []Query
	Guard    uint32
	HasGuard bool
}

// PlanFraction carries the raw counters of one fraction entry.
type PlanFraction struct {
	Hits, Records uint64
}

// PlanHist carries the raw counters of one histogram entry.
type PlanHist struct {
	Users uint64
	Hist  []uint64
}

// PlanResult carries every entry's counters back, in the order the plan
// listed them.  Like the v2 partial results, all counters are exact
// integers that merge by addition across disjoint ownership filters, and
// the echoed epoch lets the router refuse to merge replies computed under
// different ring generations.
type PlanResult struct {
	Epoch     uint64
	Fractions []PlanFraction
	Hists     []PlanHist
	Counts    []uint64
	Total     uint64
}

// EncodePlanQuery serializes a plan query.
func EncodePlanQuery(q PlanQuery) []byte {
	out := make([]byte, 0, 256)
	out = appendFilter(out, q.Filter)
	out = binary.BigEndian.AppendUint32(out, uint32(len(q.Fractions)))
	for _, f := range q.Fractions {
		out = appendBytes(out, f.Subset.Tag())
		out = appendBytes(out, f.Value.Bytes())
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(q.Hists)))
	for _, h := range q.Hists {
		out = binary.BigEndian.AppendUint32(out, uint32(len(h.Subs)))
		for _, s := range h.Subs {
			out = appendBytes(out, s.Subset.Tag())
			out = appendBytes(out, s.Value.Bytes())
		}
		if h.HasGuard {
			out = append(out, 1)
			out = binary.BigEndian.AppendUint32(out, h.Guard)
		} else {
			out = append(out, 0)
		}
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(q.Counts)))
	for _, b := range q.Counts {
		out = appendBytes(out, b.Tag())
	}
	if q.Total {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// readU32 consumes a big-endian uint32.
func readU32(src []byte) (uint32, []byte, error) {
	if len(src) < 4 {
		return 0, nil, ErrCorrupt
	}
	return binary.BigEndian.Uint32(src), src[4:], nil
}

// DecodePlanQuery reverses EncodePlanQuery.
func DecodePlanQuery(b []byte) (PlanQuery, error) {
	var q PlanQuery
	var err error
	rest := b
	if q.Filter, rest, err = readFilter(rest); err != nil {
		return PlanQuery{}, err
	}
	var n uint32
	if n, rest, err = readU32(rest); err != nil {
		return PlanQuery{}, err
	}
	if n > MaxPlanFractions {
		return PlanQuery{}, fmt.Errorf("%w: plan claims %d fraction entries", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		var f Query
		if f.Subset, f.Value, rest, err = readSubsetValue(rest); err != nil {
			return PlanQuery{}, err
		}
		q.Fractions = append(q.Fractions, f)
	}
	if n, rest, err = readU32(rest); err != nil {
		return PlanQuery{}, err
	}
	if n > MaxPlanHists {
		return PlanQuery{}, fmt.Errorf("%w: plan claims %d histogram entries", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		var k uint32
		if k, rest, err = readU32(rest); err != nil {
			return PlanQuery{}, err
		}
		if k > maxSubQueries {
			return PlanQuery{}, fmt.Errorf("%w: plan histogram claims %d sub-queries", ErrCorrupt, k)
		}
		var h PlanHistQuery
		h.Subs = make([]Query, 0, k)
		for j := uint32(0); j < k; j++ {
			var s Query
			if s.Subset, s.Value, rest, err = readSubsetValue(rest); err != nil {
				return PlanQuery{}, err
			}
			h.Subs = append(h.Subs, s)
		}
		if len(rest) < 1 {
			return PlanQuery{}, ErrCorrupt
		}
		switch rest[0] {
		case 0:
			rest = rest[1:]
		case 1:
			rest = rest[1:]
			if h.Guard, rest, err = readU32(rest); err != nil {
				return PlanQuery{}, err
			}
			if uint64(h.Guard) >= uint64(len(q.Fractions)) {
				return PlanQuery{}, fmt.Errorf("%w: histogram guard %d with %d fraction entries", ErrCorrupt, h.Guard, len(q.Fractions))
			}
			h.HasGuard = true
		default:
			return PlanQuery{}, fmt.Errorf("%w: histogram guard flag %d", ErrCorrupt, rest[0])
		}
		q.Hists = append(q.Hists, h)
	}
	if n, rest, err = readU32(rest); err != nil {
		return PlanQuery{}, err
	}
	if n > MaxPlanCounts {
		return PlanQuery{}, fmt.Errorf("%w: plan claims %d count entries", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		var tag []byte
		if tag, rest, err = readBytes(rest); err != nil {
			return PlanQuery{}, err
		}
		subset, err := bitvec.ParseTag(tag)
		if err != nil {
			return PlanQuery{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		q.Counts = append(q.Counts, subset)
	}
	if len(rest) != 1 {
		return PlanQuery{}, ErrCorrupt
	}
	switch rest[0] {
	case 0:
	case 1:
		q.Total = true
	default:
		return PlanQuery{}, fmt.Errorf("%w: plan total flag %d", ErrCorrupt, rest[0])
	}
	return q, nil
}

// EncodePlanResult serializes a plan result.
func EncodePlanResult(r PlanResult) []byte {
	out := make([]byte, 0, 32+16*len(r.Fractions)+8*len(r.Counts))
	out = binary.BigEndian.AppendUint64(out, r.Epoch)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Fractions)))
	for _, f := range r.Fractions {
		out = binary.BigEndian.AppendUint64(out, f.Hits)
		out = binary.BigEndian.AppendUint64(out, f.Records)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Hists)))
	for _, h := range r.Hists {
		out = binary.BigEndian.AppendUint64(out, h.Users)
		out = binary.BigEndian.AppendUint32(out, uint32(len(h.Hist)))
		for _, c := range h.Hist {
			out = binary.BigEndian.AppendUint64(out, c)
		}
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Counts)))
	for _, c := range r.Counts {
		out = binary.BigEndian.AppendUint64(out, c)
	}
	return binary.BigEndian.AppendUint64(out, r.Total)
}

// readU64 consumes a big-endian uint64.
func readU64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrCorrupt
	}
	return binary.BigEndian.Uint64(src), src[8:], nil
}

// DecodePlanResult reverses EncodePlanResult.
func DecodePlanResult(b []byte) (PlanResult, error) {
	var r PlanResult
	var err error
	rest := b
	if r.Epoch, rest, err = readU64(rest); err != nil {
		return PlanResult{}, err
	}
	var n uint32
	if n, rest, err = readU32(rest); err != nil {
		return PlanResult{}, err
	}
	if n > MaxPlanFractions || uint64(len(rest)) < 16*uint64(n) {
		return PlanResult{}, fmt.Errorf("%w: plan result claims %d fraction entries in %d bytes", ErrCorrupt, n, len(rest))
	}
	for i := uint32(0); i < n; i++ {
		var f PlanFraction
		f.Hits, rest, _ = readU64(rest)
		f.Records, rest, _ = readU64(rest)
		r.Fractions = append(r.Fractions, f)
	}
	if n, rest, err = readU32(rest); err != nil {
		return PlanResult{}, err
	}
	if n > MaxPlanHists {
		return PlanResult{}, fmt.Errorf("%w: plan result claims %d histogram entries", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		var h PlanHist
		if h.Users, rest, err = readU64(rest); err != nil {
			return PlanResult{}, err
		}
		var bins uint32
		if bins, rest, err = readU32(rest); err != nil {
			return PlanResult{}, err
		}
		if bins > maxHistBins || uint64(len(rest)) < 8*uint64(bins) {
			return PlanResult{}, fmt.Errorf("%w: plan histogram result with %d bins in %d bytes", ErrCorrupt, bins, len(rest))
		}
		h.Hist = make([]uint64, bins)
		for j := range h.Hist {
			h.Hist[j], rest, _ = readU64(rest)
		}
		r.Hists = append(r.Hists, h)
	}
	if n, rest, err = readU32(rest); err != nil {
		return PlanResult{}, err
	}
	if n > MaxPlanCounts || uint64(len(rest)) < 8*uint64(n) {
		return PlanResult{}, fmt.Errorf("%w: plan result claims %d count entries in %d bytes", ErrCorrupt, n, len(rest))
	}
	for i := uint32(0); i < n; i++ {
		var c uint64
		c, rest, _ = readU64(rest)
		r.Counts = append(r.Counts, c)
	}
	if r.Total, rest, err = readU64(rest); err != nil {
		return PlanResult{}, err
	}
	if len(rest) != 0 {
		return PlanResult{}, ErrCorrupt
	}
	return r, nil
}
