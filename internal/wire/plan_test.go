package wire

import (
	"encoding/binary"
	"reflect"
	"testing"

	"sketchprivacy/internal/bitvec"
)

// TestPlanQueryRoundTrip pins the v3 plan frame encoding: every field
// survives the round trip, including an empty plan and a filterless one.
func TestPlanQueryRoundTrip(t *testing.T) {
	cases := []PlanQuery{
		{},
		{Total: true},
		{
			Filter: &Filter{Epoch: 9, Nodes: []string{"a:1", "b:2", "c:3"}, VNodes: 64, Self: "c:3", Live: []string{"a:1", "c:3"}},
			Fractions: []Query{
				{Subset: bitvec.MustSubset(0, 2), Value: bitvec.MustFromString("10")},
				{Subset: bitvec.MustSubset(1), Value: bitvec.MustFromString("1")},
			},
			Hists: []PlanHistQuery{
				{Subs: []Query{{Subset: bitvec.MustSubset(0), Value: bitvec.MustFromString("1")}, {Subset: bitvec.MustSubset(3), Value: bitvec.MustFromString("0")}}, Guard: 0, HasGuard: true},
				{Subs: []Query{{Subset: bitvec.MustSubset(5), Value: bitvec.MustFromString("1")}}},
			},
			Counts: []bitvec.Subset{bitvec.MustSubset(0), bitvec.MustSubset(0, 1, 2)},
			Total:  true,
		},
	}
	for i, q := range cases {
		got, err := DecodePlanQuery(EncodePlanQuery(q))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalizePlanQuery(q), normalizePlanQuery(got)) {
			t.Fatalf("case %d: round trip changed the plan:\nin  %+v\nout %+v", i, q, got)
		}
	}
}

// normalizePlanQuery maps empty slices to nil so DeepEqual compares
// contents, not allocation accidents.
func normalizePlanQuery(q PlanQuery) PlanQuery {
	if len(q.Fractions) == 0 {
		q.Fractions = nil
	}
	if len(q.Hists) == 0 {
		q.Hists = nil
	}
	if len(q.Counts) == 0 {
		q.Counts = nil
	}
	return q
}

// TestPlanResultRoundTrip pins the v3 plan result encoding.
func TestPlanResultRoundTrip(t *testing.T) {
	r := PlanResult{
		Epoch:     7,
		Fractions: []PlanFraction{{Hits: 1, Records: 2}, {Hits: 0, Records: 0}},
		Hists:     []PlanHist{{Users: 5, Hist: []uint64{1, 3, 1}}, {Users: 0, Hist: []uint64{0, 0}}},
		Counts:    []uint64{42},
		Total:     99,
	}
	got, err := DecodePlanResult(EncodePlanResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed the result:\nin  %+v\nout %+v", r, got)
	}
}

// TestPlanDecodeGuards drives hostile count fields through the decoders:
// each must error, never allocate per the claimed count or panic.
func TestPlanDecodeGuards(t *testing.T) {
	// A plan query whose fraction count claims 2^32-1 entries.
	hostile := append([]byte{0}, binary.BigEndian.AppendUint32(nil, 0xFFFFFFFF)...)
	if _, err := DecodePlanQuery(hostile); err == nil {
		t.Fatal("hostile fraction count accepted")
	}
	// A plan result whose histogram bin count exceeds the payload.
	r := binary.BigEndian.AppendUint64(nil, 1)   // epoch
	r = binary.BigEndian.AppendUint32(r, 0)      // fractions
	r = binary.BigEndian.AppendUint32(r, 1)      // one hist
	r = binary.BigEndian.AppendUint64(r, 1)      // users
	r = binary.BigEndian.AppendUint32(r, 0xFFFF) // bins far beyond payload
	if _, err := DecodePlanResult(r); err == nil {
		t.Fatal("hostile bin count accepted")
	}
	// A trailing byte after a valid plan query must be rejected.
	ok := EncodePlanQuery(PlanQuery{Total: true})
	if _, err := DecodePlanQuery(append(ok, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A total flag outside {0,1} must be rejected (canonical form).
	bad := EncodePlanQuery(PlanQuery{})
	bad[len(bad)-1] = 2
	if _, err := DecodePlanQuery(bad); err == nil {
		t.Fatal("non-canonical total flag accepted")
	}
}
