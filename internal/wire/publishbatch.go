package wire

import "sketchprivacy/internal/sketch"

// TypePublishBatch carries a batch of published sketches in one frame
// (payload: count-prefixed records, CRC-framed like the transfer
// messages).  The server lands the whole batch through the engine's
// batched ingest, so the records reach the durable store as one
// commit-window entry per touched shard instead of one fsync each, and
// answers a single TypeAck once every record is durable — or a
// TypeError naming the earliest failure, in which case the sender must
// assume nothing about which records landed and re-publish the batch
// (ingestion is idempotent, so replaying already-applied records is
// harmless).
const TypePublishBatch byte = 23

// EncodePublishBatch serializes a publish batch with a trailing CRC32
// over the body.  Callers keep batches at or under MaxTransferBatch
// records so the frame stays within MaxFrameSize.
func EncodePublishBatch(ps []sketch.Published) []byte {
	return appendCRC(appendRecords(make([]byte, 0, 64), ps))
}

// DecodePublishBatch reverses EncodePublishBatch, verifying the CRC.
func DecodePublishBatch(b []byte) ([]sketch.Published, error) {
	body, err := checkCRC(b)
	if err != nil {
		return nil, err
	}
	return readRecords(body)
}
