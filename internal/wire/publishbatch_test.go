package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestPublishBatchRoundTrip(t *testing.T) {
	records := transferRecords()
	enc := EncodePublishBatch(records)
	got, err := DecodePublishBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip: got %+v want %+v", got, records)
	}
	// Canonical: re-encoding reproduces the bytes.
	if !bytes.Equal(EncodePublishBatch(got), enc) {
		t.Fatal("publish batch encoding is not canonical")
	}
	// An empty batch round-trips to nil records.
	got, err = DecodePublishBatch(EncodePublishBatch(nil))
	if err != nil || got != nil {
		t.Fatalf("empty batch round trip: (%v, %v)", got, err)
	}
}

func TestPublishBatchCRCDetectsCorruption(t *testing.T) {
	enc := EncodePublishBatch(transferRecords())
	for _, flip := range []int{0, 4, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[flip] ^= 0x40
		if _, err := DecodePublishBatch(bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", flip)
		}
	}
	// Truncation is detected too, down to the empty payload.
	if _, err := DecodePublishBatch(enc[:len(enc)-5]); err == nil {
		t.Fatal("truncated batch went undetected")
	}
	if _, err := DecodePublishBatch(nil); err == nil {
		t.Fatal("empty payload went undetected")
	}
}

func TestPublishBatchRejectsHostileCount(t *testing.T) {
	// A batch claiming 2^32-1 records must fail on the count guard, not
	// allocate first.
	body := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodePublishBatch(appendCRC(body)); err == nil {
		t.Fatal("hostile record count accepted")
	}
}
