package wire

import (
	"encoding/json"
	"fmt"
)

// Stats message types (the sketchctl stats opcode pair).
const (
	// TypeStats requests a server stats report; the payload is empty.
	TypeStats byte = 6
	// TypeStatsReply carries the report back, EncodeStats-encoded.
	TypeStatsReply byte = 7
)

// SubsetCount reports how many sketches one subset holds.
type SubsetCount struct {
	// Subset is the human-readable form, e.g. "{0,2,4}".
	Subset string `json:"subset"`
	// Positions is the subset's attribute positions in subset order.
	Positions []int `json:"positions"`
	// Count is the number of stored sketches for the subset.
	Count uint64 `json:"count"`
}

// ShardStats mirrors store.ShardStats on the wire (the wire package
// cannot import internal/store — the store frames its records with this
// package — so the type is duplicated here and converted by the server).
type ShardStats struct {
	Shard          int    `json:"shard"`
	WALBytes       int64  `json:"wal_bytes"`
	WALRecords     uint64 `json:"wal_records"`
	Segments       int    `json:"segments"`
	SegmentBytes   int64  `json:"segment_bytes"`
	SegmentRecords uint64 `json:"segment_records"`
}

// StoreStats describes the durable store backing a server, when any.
type StoreStats struct {
	// Dir is the server's data directory.
	Dir string `json:"dir"`
	// Records counts raw records across WALs and segments, before
	// deduplication.
	Records uint64 `json:"records"`
	// Shards holds per-shard sizes.
	Shards []ShardStats `json:"shards"`
}

// Robustness carries a node's request-path health counters: how often the
// per-connection read-idle deadline and the max-in-flight guard fired, and
// how many frames failed their payload checksum.  Operators watch these to
// see degradation (slow clients, bursts, a flaky link) before it becomes
// refusal.
type Robustness struct {
	// InFlight is the number of frames executing right now.
	InFlight int `json:"in_flight"`
	// MaxInFlight is the configured in-flight ceiling (0 = unlimited).
	MaxInFlight int `json:"max_in_flight"`
	// Overloads counts requests shed by the in-flight guard.
	Overloads uint64 `json:"overloads"`
	// IdleCloses counts connections closed by the read-idle deadline.
	IdleCloses uint64 `json:"idle_closes"`
	// ChecksumErrors counts frames refused for a CRC mismatch.
	ChecksumErrors uint64 `json:"checksum_errors"`
	// DeadlineAbandons counts plan executions abandoned because the
	// query's end-to-end budget expired mid-execution.
	DeadlineAbandons uint64 `json:"deadline_abandons"`
}

// Stats is the server report answering a TypeStats request.
type Stats struct {
	// Params is the human-readable mechanism parameter string.
	Params string `json:"params"`
	// P is the bias of the public function H.
	P float64 `json:"p"`
	// SketchBits is the sketch length ℓ.
	SketchBits int `json:"sketch_bits"`
	// Sketches is the total number of stored sketches.
	Sketches uint64 `json:"sketches"`
	// Subsets lists per-subset record counts.
	Subsets []SubsetCount `json:"subsets"`
	// Store is present when the server runs on a durable store.
	Store *StoreStats `json:"store,omitempty"`
	// Robustness is present when the server tracks request-path health.
	Robustness *Robustness `json:"robustness,omitempty"`
}

// EncodeStats serializes a stats report.  Stats is an operator endpoint,
// not a hot path, so the payload is JSON rather than the hand-rolled
// binary encoding the data-plane messages use.
func EncodeStats(s Stats) []byte {
	out, err := json.Marshal(s)
	if err != nil {
		// Stats contains only plain data types; Marshal cannot fail.
		panic(fmt.Sprintf("wire: encoding stats: %v", err))
	}
	return out
}

// DecodeStats reverses EncodeStats.
func DecodeStats(b []byte) (Stats, error) {
	var s Stats
	if err := json.Unmarshal(b, &s); err != nil {
		return Stats{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}
