package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sketchprivacy/internal/sketch"
)

// Rebalance message types: the data plane that moves sketches between
// nodes when the ring membership changes, plus the admin opcodes a
// sketchrouter accepts to drive a membership change.
const (
	// TypeSnapshotRead asks a node for one batch of its stored records,
	// starting at an opaque cursor (payload: SnapshotRead).  The router
	// streams a node's contents through repeated reads during a rebalance.
	TypeSnapshotRead byte = 14
	// TypeSnapshotBatch carries a batch of records back plus the cursor
	// for the next read (payload: SnapshotBatch, CRC-framed).
	TypeSnapshotBatch byte = 15
	// TypeTransferPush delivers a batch of records to their new owner
	// during a rebalance (payload: TransferPush, CRC-framed).  The
	// receiver ingests each record through the engine's idempotent
	// identical-republish path, so duplicated pushes converge.
	TypeTransferPush byte = 16
	// TypeTransferAck acknowledges a push with the number of records that
	// were newly applied (payload: TransferAck).
	TypeTransferAck byte = 17
	// TypeJoin asks a router to add a node to the live cluster (payload:
	// the node address as raw bytes); the router rebalances and answers
	// TypeAck only after the ring cutover.
	TypeJoin byte = 18
	// TypeDrain asks a router to move a node's ownership away and retire
	// it from the ring (payload: the node address); TypeAck follows the
	// cutover.
	TypeDrain byte = 19
	// TypeRebalanceStatus asks a router for its membership-change state;
	// the reply is a TypePong status text.
	TypeRebalanceStatus byte = 20
)

// maxTransferRecords bounds a hostile batch count before allocation; real
// batches are further bounded by MaxFrameSize.
const maxTransferRecords = 1 << 16

// MaxTransferBatch is the record count per snapshot read or transfer push
// a well-behaved peer uses: typical sketch records keep 8192 of them
// comfortably under MaxFrameSize.  Nodes clamp incoming SnapshotRead
// limits to it (a hostile Max must not materialise a whole store in one
// reply), and the router clamps its configured transfer batch the same
// way.
const MaxTransferBatch = 8192

// SnapshotRead is one streaming read request: an opaque cursor (zero
// starts the stream; later values come from the previous SnapshotBatch)
// and the maximum number of records wanted.
type SnapshotRead struct {
	Cursor uint64
	Max    uint32
}

// EncodeSnapshotRead serializes a snapshot read request.
func EncodeSnapshotRead(r SnapshotRead) []byte {
	out := make([]byte, 12)
	binary.BigEndian.PutUint64(out, r.Cursor)
	binary.BigEndian.PutUint32(out[8:], r.Max)
	return out
}

// DecodeSnapshotRead reverses EncodeSnapshotRead.
func DecodeSnapshotRead(b []byte) (SnapshotRead, error) {
	if len(b) != 12 {
		return SnapshotRead{}, ErrCorrupt
	}
	return SnapshotRead{
		Cursor: binary.BigEndian.Uint64(b),
		Max:    binary.BigEndian.Uint32(b[8:]),
	}, nil
}

// SnapshotBatch is one streamed batch of records: the cursor the next read
// should pass, whether the stream is exhausted, and the records.  The
// stream may repeat a record across batches (concurrent rolls and
// compactions shift where records live) but never skips one that existed
// when the stream started — duplicates are harmless because transfer
// ingestion is idempotent.
type SnapshotBatch struct {
	Next    uint64
	Done    bool
	Records []sketch.Published
}

// EncodeSnapshotBatch serializes a batch with a trailing CRC32 over the
// body, so a corrupted transfer is detected at the frame level before any
// record is applied.
func EncodeSnapshotBatch(sb SnapshotBatch) []byte {
	out := make([]byte, 0, 64)
	out = binary.BigEndian.AppendUint64(out, sb.Next)
	if sb.Done {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendRecords(out, sb.Records)
	return appendCRC(out)
}

// DecodeSnapshotBatch reverses EncodeSnapshotBatch, verifying the CRC.
func DecodeSnapshotBatch(b []byte) (SnapshotBatch, error) {
	body, err := checkCRC(b)
	if err != nil {
		return SnapshotBatch{}, err
	}
	if len(body) < 9 {
		return SnapshotBatch{}, ErrCorrupt
	}
	sb := SnapshotBatch{Next: binary.BigEndian.Uint64(body)}
	switch body[8] {
	case 0:
	case 1:
		sb.Done = true
	default:
		return SnapshotBatch{}, fmt.Errorf("%w: snapshot done byte %d", ErrCorrupt, body[8])
	}
	sb.Records, err = readRecords(body[9:])
	if err != nil {
		return SnapshotBatch{}, err
	}
	return sb, nil
}

// TransferPush is one batch of records delivered to their new owner, tagged
// with the ring epoch the rebalance runs under.
type TransferPush struct {
	Epoch   uint64
	Records []sketch.Published
}

// EncodeTransferPush serializes a push with a trailing CRC32 over the body.
func EncodeTransferPush(tp TransferPush) []byte {
	out := make([]byte, 0, 64)
	out = binary.BigEndian.AppendUint64(out, tp.Epoch)
	out = appendRecords(out, tp.Records)
	return appendCRC(out)
}

// DecodeTransferPush reverses EncodeTransferPush, verifying the CRC.
func DecodeTransferPush(b []byte) (TransferPush, error) {
	body, err := checkCRC(b)
	if err != nil {
		return TransferPush{}, err
	}
	if len(body) < 8 {
		return TransferPush{}, ErrCorrupt
	}
	tp := TransferPush{Epoch: binary.BigEndian.Uint64(body)}
	tp.Records, err = readRecords(body[8:])
	if err != nil {
		return TransferPush{}, err
	}
	return tp, nil
}

// TransferAck reports how many of a push's records were newly applied (the
// rest were already present — the idempotent path).
type TransferAck struct {
	Applied uint64
}

// EncodeTransferAck serializes a transfer acknowledgement.
func EncodeTransferAck(a TransferAck) []byte {
	return binary.BigEndian.AppendUint64(nil, a.Applied)
}

// DecodeTransferAck reverses EncodeTransferAck.
func DecodeTransferAck(b []byte) (TransferAck, error) {
	if len(b) != 8 {
		return TransferAck{}, ErrCorrupt
	}
	return TransferAck{Applied: binary.BigEndian.Uint64(b)}, nil
}

// appendRecords appends a count-prefixed list of length-prefixed
// EncodePublished records.
func appendRecords(dst []byte, records []sketch.Published) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(records)))
	for _, p := range records {
		dst = binary.BigEndian.AppendUint32(dst, uint32(PublishedEncodedLen(p)))
		dst = AppendPublished(dst, p)
	}
	return dst
}

// readRecords reverses appendRecords, requiring the input to be fully
// consumed.
func readRecords(src []byte) ([]sketch.Published, error) {
	if len(src) < 4 {
		return nil, ErrCorrupt
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	if n > maxTransferRecords {
		return nil, fmt.Errorf("%w: transfer batch claims %d records", ErrCorrupt, n)
	}
	if n == 0 {
		if len(src) != 0 {
			return nil, ErrCorrupt
		}
		return nil, nil
	}
	records := make([]sketch.Published, 0, min(int(n), len(src)/8+1))
	for i := uint32(0); i < n; i++ {
		rb, rest, err := readBytes(src)
		if err != nil {
			return nil, err
		}
		p, err := DecodePublished(rb)
		if err != nil {
			return nil, err
		}
		records = append(records, p)
		src = rest
	}
	if len(src) != 0 {
		return nil, ErrCorrupt
	}
	return records, nil
}

// appendCRC appends the IEEE CRC32 of everything before it.
func appendCRC(body []byte) []byte {
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// checkCRC verifies and strips a trailing CRC32.
func checkCRC(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: transfer frame CRC mismatch", ErrCorrupt)
	}
	return body, nil
}
