package wire

import (
	"bytes"
	"reflect"
	"testing"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

func transferRecords() []sketch.Published {
	return []sketch.Published{
		{ID: 1, Subset: bitvec.MustSubset(0, 2, 5), S: sketch.Sketch{Key: 9, Length: 10}},
		{ID: 2, Subset: bitvec.MustSubset(1), S: sketch.Sketch{Key: 0, Length: 12}},
		{ID: 1 << 40, Subset: bitvec.MustSubset(7), S: sketch.Sketch{Key: 3, Length: 10}},
	}
}

func TestHelloEpochRoundTrip(t *testing.T) {
	v, epoch, has, err := ParseHello(EncodeHelloEpoch(42))
	if err != nil {
		t.Fatal(err)
	}
	if v != ProtocolVersion || epoch != 42 || !has {
		t.Fatalf("epoch hello parsed as (v=%d epoch=%d has=%v)", v, epoch, has)
	}
	// The bare form still parses, without an epoch.
	v, _, has, err = ParseHello(EncodeHello())
	if err != nil || v != ProtocolVersion || has {
		t.Fatalf("bare hello parsed as (v=%d has=%v err=%v)", v, has, err)
	}
	// CheckHello accepts both forms from a same-version peer.
	if err := CheckHello(EncodeHelloEpoch(7)); err != nil {
		t.Fatalf("CheckHello refused an epoch hello: %v", err)
	}
}

func TestPingEpochRoundTrip(t *testing.T) {
	epoch, has, err := ParsePing(EncodePingEpoch(17))
	if err != nil || !has || epoch != 17 {
		t.Fatalf("ParsePing(epoch ping) = (%d, %v, %v)", epoch, has, err)
	}
	if _, has, err := ParsePing(nil); err != nil || has {
		t.Fatalf("bare ping parsed as (has=%v err=%v)", has, err)
	}
	if _, _, err := ParsePing([]byte{1, 2, 3}); err == nil {
		t.Fatal("ParsePing accepted a 3-byte payload")
	}
}

func TestStaleEpochMarker(t *testing.T) {
	err := StaleEpochError(3, 5)
	if !IsStaleEpoch(err.Error()) {
		t.Fatalf("stale-epoch refusal not recognisable: %v", err)
	}
	if IsStaleEpoch("cluster: node down") {
		t.Fatal("IsStaleEpoch matched an unrelated error")
	}
}

func TestSnapshotReadRoundTrip(t *testing.T) {
	r := SnapshotRead{Cursor: 1<<40 | 7, Max: 512}
	got, err := DecodeSnapshotRead(EncodeSnapshotRead(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
	if _, err := DecodeSnapshotRead([]byte{1, 2}); err == nil {
		t.Fatal("DecodeSnapshotRead accepted a short payload")
	}
}

func TestSnapshotBatchRoundTrip(t *testing.T) {
	for _, sb := range []SnapshotBatch{
		{Next: 99, Done: false, Records: transferRecords()},
		{Next: 0, Done: true},
	} {
		enc := EncodeSnapshotBatch(sb)
		got, err := DecodeSnapshotBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Next != sb.Next || got.Done != sb.Done || !reflect.DeepEqual(got.Records, sb.Records) {
			t.Fatalf("round trip: got %+v want %+v", got, sb)
		}
		// Canonical: re-encoding reproduces the bytes.
		if !bytes.Equal(EncodeSnapshotBatch(got), enc) {
			t.Fatal("snapshot batch encoding is not canonical")
		}
	}
}

func TestTransferPushRoundTrip(t *testing.T) {
	tp := TransferPush{Epoch: 5, Records: transferRecords()}
	enc := EncodeTransferPush(tp)
	got, err := DecodeTransferPush(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != tp.Epoch || !reflect.DeepEqual(got.Records, tp.Records) {
		t.Fatalf("round trip: got %+v want %+v", got, tp)
	}
	a, err := DecodeTransferAck(EncodeTransferAck(TransferAck{Applied: 3}))
	if err != nil || a.Applied != 3 {
		t.Fatalf("transfer ack round trip: %+v, %v", a, err)
	}
}

func TestTransferCRCDetectsCorruption(t *testing.T) {
	enc := EncodeTransferPush(TransferPush{Epoch: 1, Records: transferRecords()})
	for _, flip := range []int{0, 8, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[flip] ^= 0x40
		if _, err := DecodeTransferPush(bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", flip)
		}
	}
	enc = EncodeSnapshotBatch(SnapshotBatch{Next: 4, Records: transferRecords()})
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x01
	if _, err := DecodeSnapshotBatch(bad); err == nil {
		t.Fatal("snapshot batch corruption went undetected")
	}
}

func TestTransferDecodeRejectsHostileCounts(t *testing.T) {
	// A batch claiming 2^32-1 records must fail on the count guard, not
	// allocate first.
	body := []byte{0, 0, 0, 0, 0, 0, 0, 9} // epoch
	body = append(body, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeTransferPush(appendCRC(body)); err == nil {
		t.Fatal("hostile record count accepted")
	}
}
