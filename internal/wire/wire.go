// Package wire defines the compact binary protocol the collection server
// and client speak: length-prefixed frames carrying published sketches,
// conjunctive queries and their results.  The encoding reuses the canonical
// byte forms of the underlying types (subset tags, value vectors, sketch
// keys), so the bytes on the wire are exactly the public objects of the
// paper — experiment E16 measures their size directly.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

// Message types.
const (
	// TypePublish carries one published sketch from a user to the collector.
	TypePublish byte = 1
	// TypeQuery carries a conjunctive query from an analyst.
	TypeQuery byte = 2
	// TypeResult carries a query result back to the analyst.
	TypeResult byte = 3
	// TypeAck acknowledges a publish.
	TypeAck byte = 4
	// TypeError carries a protocol- or query-level error message.
	TypeError byte = 5
)

// MaxFrameSize bounds a single frame; sketches and conjunctive queries are
// tiny, so anything larger indicates a corrupt or hostile peer.
const MaxFrameSize = 1 << 20

// FrameHeaderSize is the byte cost every frame pays before its payload:
// the type byte, the 4-byte big-endian payload length and the 4-byte
// CRC32-C of the payload.
const FrameHeaderSize = 9

// frameCRC is the frame checksum polynomial: Castagnoli, the same family
// the durable store frames its WAL records with, hardware-accelerated on
// every platform this runs on.
var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// Frame errors.
var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrCorrupt is returned when a payload cannot be decoded.
	ErrCorrupt = errors.New("wire: corrupt payload")
	// ErrFrameChecksum is returned when a frame's payload does not match
	// its header CRC: the bytes were corrupted in flight (or a torn write
	// spliced two frames together).  The connection cannot be trusted past
	// this point — later frames have no self-synchronization — so readers
	// hang up and the peer retries on a fresh connection.
	ErrFrameChecksum = errors.New("wire: frame checksum mismatch")
)

// WriteFrame writes a type byte, a 4-byte big-endian length, a 4-byte
// CRC32-C of the payload and the payload itself.  The checksum is what
// turns in-flight byte corruption from a silently wrong estimate into a
// loud ErrFrameChecksum on the reading side: raw counters carried in
// partial results merge into published numbers, so a flipped bit must
// never decode cleanly.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	header := make([]byte, FrameHeaderSize)
	header[0] = msgType
	binary.BigEndian.PutUint32(header[1:], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[5:], crc32.Checksum(payload, frameCRC))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame, verifying the payload
// checksum.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	header := make([]byte, FrameHeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(header[1:])
	if size > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if got, want := crc32.Checksum(payload, frameCRC), binary.BigEndian.Uint32(header[5:]); got != want {
		return 0, nil, fmt.Errorf("%w: frame type %d, %d payload bytes", ErrFrameChecksum, header[0], size)
	}
	return header[0], payload, nil
}

// appendBytes appends a 4-byte length prefix and the bytes.
func appendBytes(dst, b []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	dst = append(dst, l[:]...)
	return append(dst, b...)
}

// readBytes consumes a length-prefixed byte string.
func readBytes(src []byte) (value, rest []byte, err error) {
	if len(src) < 4 {
		return nil, nil, ErrCorrupt
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	if uint32(len(src)) < n {
		return nil, nil, ErrCorrupt
	}
	return src[:n], src[n:], nil
}

// EncodePublished serializes a published sketch.
func EncodePublished(p sketch.Published) []byte {
	return AppendPublished(make([]byte, 0, PublishedEncodedLen(p)), p)
}

// PublishedEncodedLen returns len(EncodePublished(p)) without encoding.
func PublishedEncodedLen(p sketch.Published) int {
	return 8 + 4 + p.Subset.TagLen() + 4 + p.S.EncodedLen()
}

// AppendPublished appends the EncodePublished encoding to dst without
// intermediate allocations; the store's WAL assembles records into
// reusable scratch through it.
func AppendPublished(dst []byte, p sketch.Published) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.ID))
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.Subset.TagLen()))
	dst = p.Subset.AppendTag(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.S.EncodedLen()))
	return p.S.AppendBytes(dst)
}

// DecodePublished reverses EncodePublished.
func DecodePublished(b []byte) (sketch.Published, error) {
	return decodePublished(b, nil)
}

// PublishedDecoder decodes a stream of encoded published records, reusing
// the parsed subset across consecutive records that carry identical tag
// bytes.  Segment records are sorted by subset key and replayed WAL batches
// cluster by subset, so the store's startup replay hits the cache almost
// every record and skips the tag parse (and its per-record allocations).
// Decoded records of one run share a single Subset value, which is safe:
// subsets are immutable.  The zero value is ready to use; a decoder is not
// safe for concurrent use.
type PublishedDecoder struct {
	tag    []byte
	subset bitvec.Subset
}

// Decode is DecodePublished with the decoder's subset cache.
func (d *PublishedDecoder) Decode(b []byte) (sketch.Published, error) {
	return decodePublished(b, d)
}

func decodePublished(b []byte, d *PublishedDecoder) (sketch.Published, error) {
	if len(b) < 8 {
		return sketch.Published{}, ErrCorrupt
	}
	id := bitvec.UserID(binary.BigEndian.Uint64(b))
	rest := b[8:]
	tag, rest, err := readBytes(rest)
	if err != nil {
		return sketch.Published{}, err
	}
	var subset bitvec.Subset
	if d != nil && d.tag != nil && bytes.Equal(tag, d.tag) {
		subset = d.subset
	} else {
		subset, err = bitvec.ParseTag(tag)
		if err != nil {
			return sketch.Published{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if d != nil {
			d.subset = subset
			d.tag = append(d.tag[:0], tag...)
		}
	}
	sb, rest, err := readBytes(rest)
	if err != nil {
		return sketch.Published{}, err
	}
	if len(rest) != 0 {
		return sketch.Published{}, ErrCorrupt
	}
	s, err := sketch.ParseSketch(sb)
	if err != nil {
		return sketch.Published{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return sketch.Published{ID: id, Subset: subset, S: s}, nil
}

// Query is a conjunctive query over one sketched subset.
type Query struct {
	Subset bitvec.Subset
	Value  bitvec.Vector
}

// EncodeQuery serializes a query.
func EncodeQuery(q Query) []byte {
	out := make([]byte, 0, 64)
	out = appendBytes(out, q.Subset.Tag())
	out = appendBytes(out, q.Value.Bytes())
	return out
}

// DecodeQuery reverses EncodeQuery.
func DecodeQuery(b []byte) (Query, error) {
	tag, rest, err := readBytes(b)
	if err != nil {
		return Query{}, err
	}
	subset, err := bitvec.ParseTag(tag)
	if err != nil {
		return Query{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	vb, rest, err := readBytes(rest)
	if err != nil {
		return Query{}, err
	}
	if len(rest) != 0 {
		return Query{}, ErrCorrupt
	}
	value, err := bitvec.ParseBytes(vb)
	if err != nil {
		return Query{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return Query{Subset: subset, Value: value}, nil
}

// Result carries a frequency estimate back to the analyst.
type Result struct {
	Fraction float64
	Raw      float64
	Users    uint64
}

// EncodeResult serializes a result.
func EncodeResult(r Result) []byte {
	out := make([]byte, 24)
	binary.BigEndian.PutUint64(out[0:], math.Float64bits(r.Fraction))
	binary.BigEndian.PutUint64(out[8:], math.Float64bits(r.Raw))
	binary.BigEndian.PutUint64(out[16:], r.Users)
	return out
}

// DecodeResult reverses EncodeResult.
func DecodeResult(b []byte) (Result, error) {
	if len(b) != 24 {
		return Result{}, ErrCorrupt
	}
	return Result{
		Fraction: math.Float64frombits(binary.BigEndian.Uint64(b[0:])),
		Raw:      math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
		Users:    binary.BigEndian.Uint64(b[16:]),
	}, nil
}

// PublishedWireSize returns the number of bytes a published sketch occupies
// on the wire (used by experiment E16).
func PublishedWireSize(p sketch.Published) int { return len(EncodePublished(p)) + FrameHeaderSize }
