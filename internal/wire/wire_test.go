package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/sketch"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("hello"), bytes.Repeat([]byte{7}, 1000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, want) {
			t.Errorf("frame %d: type %d payload %q", i, typ, got)
		}
	}
}

func TestFrameLimitsAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Error("oversized frame accepted on write")
	}
	// Hand-craft an oversized header (type, length, checksum).
	hdr := []byte{1, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Error("oversized frame accepted on read")
	}
	// Truncated stream.
	var short bytes.Buffer
	WriteFrame(&short, 2, []byte("abcdef"))
	trunc := short.Bytes()[:short.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestFrameChecksumRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 3, []byte("counter payload")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit: the reader must refuse the frame rather than
	// hand a silently different payload to the decoder.
	for i := FrameHeaderSize; i < buf.Len(); i++ {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[i] ^= 0x40
		if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameChecksum) {
			t.Fatalf("corrupt byte %d: got %v, want ErrFrameChecksum", i, err)
		}
	}
	// A corrupted checksum field itself must also fail.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[5] ^= 0x01
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameChecksum) {
		t.Fatalf("corrupt checksum: got %v, want ErrFrameChecksum", err)
	}
	// The untouched frame still reads back.
	typ, payload, err := ReadFrame(bytes.NewReader(buf.Bytes()))
	if err != nil || typ != 3 || string(payload) != "counter payload" {
		t.Fatalf("clean frame: type %d payload %q err %v", typ, payload, err)
	}
}

func TestPublishedRoundTrip(t *testing.T) {
	p := sketch.Published{
		ID:     42,
		Subset: bitvec.MustSubset(3, 0, 17),
		S:      sketch.Sketch{Key: 513, Length: 12},
	}
	back, err := DecodePublished(EncodePublished(p))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != p.ID || !back.Subset.Equal(p.Subset) || back.S != p.S {
		t.Errorf("round trip gave %+v", back)
	}
	if PublishedWireSize(p) <= 0 {
		t.Error("wire size should be positive")
	}
}

func TestPublishedRoundTripProperty(t *testing.T) {
	prop := func(id uint32, positions [4]uint8, key uint16, lenRaw uint8) bool {
		seen := map[int]bool{}
		var pos []int
		for _, pr := range positions {
			p := int(pr)
			if !seen[p] {
				seen[p] = true
				pos = append(pos, p)
			}
		}
		length := int(lenRaw%sketch.MaxLength) + 1
		p := sketch.Published{
			ID:     bitvec.UserID(id),
			Subset: bitvec.MustSubset(pos...),
			S:      sketch.Sketch{Key: uint64(key) & (1<<uint(length) - 1), Length: length},
		}
		back, err := DecodePublished(EncodePublished(p))
		return err == nil && back.ID == p.ID && back.Subset.Equal(p.Subset) && back.S == p.S
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePublishedRejectsCorrupt(t *testing.T) {
	good := EncodePublished(sketch.Published{ID: 1, Subset: bitvec.MustSubset(0), S: sketch.Sketch{Key: 1, Length: 4}})
	cases := [][]byte{
		nil,
		good[:5],
		good[:len(good)-1],
		append(append([]byte(nil), good...), 0xff),
	}
	for i, c := range cases {
		if _, err := DecodePublished(c); !errors.Is(err, ErrCorrupt) && err == nil {
			t.Errorf("case %d: corrupt payload accepted", i)
		}
	}
}

func TestQueryAndResultRoundTrip(t *testing.T) {
	q := Query{Subset: bitvec.MustSubset(2, 5), Value: bitvec.MustFromString("10")}
	back, err := DecodeQuery(EncodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Subset.Equal(q.Subset) || !back.Value.Equal(q.Value) {
		t.Errorf("query round trip gave %+v", back)
	}
	if _, err := DecodeQuery([]byte{1, 2}); err == nil {
		t.Error("corrupt query accepted")
	}

	r := Result{Fraction: 0.25, Raw: 0.251, Users: 10000}
	rb, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if rb != r {
		t.Errorf("result round trip gave %+v", rb)
	}
	if _, err := DecodeResult([]byte{1}); !errors.Is(err, ErrCorrupt) {
		t.Error("corrupt result accepted")
	}
}
