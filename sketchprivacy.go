// Package sketchprivacy is a from-scratch Go implementation of
// "Privacy via Pseudorandom Sketches" (Mishra & Sandler, PODS 2006): a
// local privacy mechanism in which each user publishes only a few-bit
// pseudorandom sketch of selected attribute subsets, yet an analyst holding
// many users' sketches can estimate the frequency of any conjunction over
// those attributes with error independent of the conjunction's size.
//
// This root package is a thin facade re-exporting the types that cover the
// common path, so downstream users can get started with a single import:
//
//	h := sketchprivacy.NewSource(key, 0.3)
//	params, _ := sketchprivacy.ParamsFor(0.3, 1_000_000, 1e-6)
//	sk, _ := sketchprivacy.NewSketcher(h, params)
//	pub, _ := sk.Sketch(rng, profile, subset)        // user side
//	eng, _ := sketchprivacy.NewEngine(h, params)     // analyst side
//	eng.Ingest(...); eng.Conjunction(subset, value)
//
// The full surface lives in the internal packages (prf, bitvec, sketch,
// query, baseline, privacy, engine, wire, server, dataset, experiment); the
// examples/ directory exercises the facade end to end and DESIGN.md maps
// every paper claim to the module that reproduces it.
package sketchprivacy

import (
	"sketchprivacy/internal/bitvec"
	"sketchprivacy/internal/engine"
	"sketchprivacy/internal/prf"
	"sketchprivacy/internal/query"
	"sketchprivacy/internal/sketch"
	"sketchprivacy/internal/stats"
	"sketchprivacy/internal/store"
)

// Core profile and query vocabulary.
type (
	// UserID is a user's public identifier.
	UserID = bitvec.UserID
	// Vector is a packed bit vector (profiles, query values).
	Vector = bitvec.Vector
	// Subset is an ordered attribute subset B.
	Subset = bitvec.Subset
	// Profile couples a public id with the private bit vector.
	Profile = bitvec.Profile
	// Literal and Conjunction express conjunctive queries over literals.
	Literal = bitvec.Literal
	// Conjunction is a conjunction of literals.
	Conjunction = bitvec.Conjunction
	// IntField lays out a k-bit integer attribute inside a profile.
	IntField = bitvec.IntField
)

// Mechanism types.
type (
	// Params holds the mechanism parameters (bias p, sketch length ℓ).
	Params = sketch.Params
	// Sketch is a published ℓ-bit sketch key.
	Sketch = sketch.Sketch
	// Published is a (user, subset, sketch) record.
	Published = sketch.Published
	// Sketcher runs Algorithm 1 on the user side.
	Sketcher = sketch.Sketcher
	// Table is the analyst-side store of published sketches.
	Table = sketch.Table
	// Estimator answers queries from a Table (Algorithm 2 and Section 4.1).
	Estimator = query.Estimator
	// Estimate is a frequency estimate with its confidence machinery.
	Estimate = query.Estimate
	// SubQuery is one component of an Appendix F combined query.
	SubQuery = query.SubQuery
	// Engine is the aggregation service (ingest sketches, answer queries).
	Engine = engine.Engine
	// RNG supplies the user's private coin flips.
	RNG = stats.RNG
	// Kernel is a per-goroutine batch evaluator of the public function H,
	// specialised to one (subset, value) query pair; loops over many
	// records should hold one instead of calling the facade per record.
	Kernel = sketch.Kernel
	// Store is the durability interface the engine persists sketches
	// through (internal/store: sharded WAL + immutable segments).
	Store = store.Store
	// StoreOptions configures a durable store (data dir, shards, fsync).
	StoreOptions = store.Options
)

// NewKernel returns a batch evaluation kernel for one query pair.  Kernels
// are single-goroutine; parallel loops create one per worker.
func NewKernel(h prf.BitSource, b Subset, v Vector) *Kernel { return sketch.NewKernel(h, b, v) }

// NewSource returns the public p-biased pseudorandom function H backed by
// the from-scratch SHA-256 HMAC, keyed with the database's generator key
// (the paper asks for at least 300 bits; prf.MinKeyBytes).
func NewSource(generatorKey []byte, p float64) (*prf.Biased, error) {
	prob, err := prf.NewProb(p)
	if err != nil {
		return nil, err
	}
	return prf.NewBiased(generatorKey, prob), nil
}

// NewRNG returns a deterministic random number generator for a user's
// private coins (tests and simulations; real users should seed from OS
// entropy).
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// NewParams validates mechanism parameters.
func NewParams(p float64, length int) (Params, error) { return sketch.NewParams(p, length) }

// ParamsFor picks the Lemma 3.1 sketch length for a population of at most m
// users and failure probability tau.
func ParamsFor(p float64, m int, tau float64) (Params, error) { return sketch.ParamsFor(p, m, tau) }

// NewSketcher builds the user-side sketcher (Algorithm 1).
func NewSketcher(h prf.BitSource, params Params) (*Sketcher, error) {
	return sketch.NewSketcher(h, params)
}

// NewTable returns an empty analyst-side sketch store.
func NewTable() *Table { return sketch.NewTable() }

// NewEstimator builds the analyst-side estimator (Algorithm 2 and the
// Section 4.1 / Appendix E–F derived queries).
func NewEstimator(h prf.BitSource) (*Estimator, error) { return query.NewEstimator(h) }

// NewEngine builds the aggregation engine (sketch store plus estimators).
func NewEngine(h prf.BitSource, params Params) (*Engine, error) { return engine.New(h, params) }

// OpenStore opens (creating if needed) a durable sketch store: sharded
// write-ahead logs plus immutable segments, with torn-tail crash recovery.
func OpenStore(opts StoreOptions) (*store.Durable, error) { return store.Open(opts) }

// NewEngineWithStore builds an engine rehydrated from st on startup and
// persisting every ingest through it.
func NewEngineWithStore(h prf.BitSource, params Params, st Store) (*Engine, error) {
	return engine.NewWithStore(h, params, st)
}

// NewSubset builds an attribute subset, validating positions.
func NewSubset(positions ...int) (Subset, error) { return bitvec.NewSubset(positions...) }

// NewProfile returns a profile with an all-zero data vector of width n.
func NewProfile(id UserID, n int) Profile { return bitvec.NewProfile(id, n) }

// VectorFromString parses a value vector from a string of '0' and '1'.
func VectorFromString(s string) (Vector, error) { return bitvec.FromString(s) }
